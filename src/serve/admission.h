/**
 * @file
 * Admission control for the render-serving front-end.
 *
 * A deployed renderer cannot accept every request: under overload an
 * unbounded queue turns every deadline miss into a cascade (each late
 * frame delays all behind it). AdmissionController decides, at submit
 * time, whether a request can still be served within its deadline — and
 * sheds it immediately if not — using the plan layer's critical-path
 * latency (the frame's dependency-DAG pipeline floor; see
 * accel/accelerator.h EstimatedServiceMs) as the service-time estimator
 * (see RT-NeRF-style real-time budgets in PAPERS.md).
 *
 * Decisions run in *virtual time*: the modeled device serves admitted
 * requests back-to-back in model milliseconds, so a request's estimated
 * completion is `max(arrival, device busy-until) + estimated latency`.
 * Virtual time makes every verdict a pure function of the admission
 * sequence — independent of host thread count or wall-clock jitter —
 * which is what keeps serving telemetry bit-identical across --threads N
 * (the repo-wide determinism contract; see runtime/sweep_runner.h).
 *
 * Thread-safety: Admit and counter reads may be called concurrently;
 * verdicts are serialized internally in call order.
 */
#ifndef FLEXNERFER_SERVE_ADMISSION_H_
#define FLEXNERFER_SERVE_ADMISSION_H_

#include <cstdint>
#include <deque>
#include <mutex>

namespace flexnerfer {

/** Queue-depth / deadline policy applied to every submitted request. */
struct AdmissionPolicy {
    /**
     * Maximum requests queued-or-running (in virtual time) when a new
     * request arrives; beyond it the request is rejected outright.
     * 0 disables the depth limit.
     */
    std::size_t max_queue_depth = 64;

    /**
     * Deadline applied to requests that do not carry their own, in
     * model milliseconds after arrival. 0 disables the default (such
     * requests are never deadline-shed).
     */
    double default_deadline_ms = 0.0;
};

/** Virtual-time single-device admission controller. */
class AdmissionController
{
  public:
    enum class Outcome : std::uint8_t {
        kAccepted,
        kRejectedQueueFull,  //!< queue depth at limit on arrival
        kShedDeadline,       //!< estimated completion past the deadline
    };

    /** One admission decision, with the virtual schedule that backs it. */
    struct Verdict {
        Outcome outcome = Outcome::kAccepted;
        /** The arrival the schedule used (after the monotone clamp). */
        double arrival_ms = 0.0;
        double start_ms = 0.0;       //!< virtual service start
        double completion_ms = 0.0;  //!< virtual completion
        double wait_ms = 0.0;        //!< start - arrival (queueing delay)
        std::size_t queue_depth = 0;  //!< depth observed on arrival
        /** The deadline the verdict was judged against, after the
         *  policy-default fallback (0 = none). The controller owns
         *  deadline resolution; callers that need the effective
         *  deadline (e.g. for dispatch ordering) read it from here
         *  rather than re-deriving it. */
        double deadline_ms = 0.0;
    };

    struct Counters {
        std::uint64_t accepted = 0;
        std::uint64_t rejected_queue_full = 0;
        std::uint64_t shed_deadline = 0;
        double busy_ms = 0.0;            //!< accepted service time total
        double first_arrival_ms = 0.0;   //!< earliest arrival seen
        double last_completion_ms = 0.0;  //!< latest accepted completion
    };

    explicit AdmissionController(const AdmissionPolicy& policy = {})
        : policy_(policy)
    {}

    AdmissionController(const AdmissionController&) = delete;
    AdmissionController& operator=(const AdmissionController&) = delete;

    /**
     * Decides one request arriving at virtual @p arrival_ms needing an
     * estimated @p est_latency_ms of service, due @p deadline_ms after
     * arrival (0 = no deadline: fall back to the policy default).
     * Arrivals are clamped monotone (an arrival earlier than a previous
     * one is treated as simultaneous with it), so any submission order
     * yields a consistent schedule.
     */
    Verdict Admit(double arrival_ms, double est_latency_ms,
                  double deadline_ms = 0.0);

    /**
     * Computes the verdict Admit would return for the same arguments
     * right now, without committing anything: no counters move, the
     * virtual schedule is untouched, and the monotone arrival clamp is
     * applied but not recorded. The shard router probes a replica's
     * admission model this way before deciding where a request lands
     * (serve/cluster.h); as long as no Admit intervenes, a subsequent
     * Admit with identical arguments returns an identical verdict.
     */
    Verdict Probe(double arrival_ms, double est_latency_ms,
                  double deadline_ms = 0.0) const;

    Counters counters() const;
    const AdmissionPolicy& policy() const { return policy_; }

  private:
    /** Computes the verdict for the current schedule without mutating
     *  it (shared by Admit and Probe; mutex_ must be held). */
    Verdict EvaluateLocked(double arrival_ms, double est_latency_ms,
                           double deadline_ms) const;

    const AdmissionPolicy policy_;

    mutable std::mutex mutex_;
    /** Virtual completion times of admitted, not-yet-finished work. */
    std::deque<double> in_service_;
    double busy_until_ms_ = 0.0;
    double last_arrival_ms_ = 0.0;
    bool saw_arrival_ = false;
    Counters counters_;
};

}  // namespace flexnerfer

#endif  // FLEXNERFER_SERVE_ADMISSION_H_
