/**
 * @file
 * SimTransport: a seeded, deterministic network model on the virtual
 * clock for the cross-host cluster shape.
 *
 * The cluster stays one process, but every request/response between the
 * controller and a shard pays a simulated RPC hop over a per-shard
 * *link*. The model is a pure function of (seed, link, direction,
 * per-link message ordinal, virtual send time): no wall clock, no
 * global RNG — so a fault drill replays byte-identically for any
 * `--threads N`, and two transports built from the same seed agree
 * draw-for-draw.
 *
 * Fault injection is a *schedule*, not a dice roll: callers register
 * `FaultEvent`s (extra loss, delay spikes, partitions, shard deaths)
 * with explicit virtual-time windows before or during a run. Whether an
 * event applies to a message depends only on the message's virtual send
 * time, so the same schedule hits the same messages every run.
 *
 * Semantics:
 *  - Request direction (controller -> shard): each attempt can be lost
 *    (base loss + active kLoss magnitudes) or blocked by an active
 *    partition; the sender retries with a fixed virtual backoff up to
 *    `max_attempts`, then reports a terminal transport failure.
 *  - Response direction (shard -> controller): pays latency/jitter and
 *    delay spikes but never fails — the shard already holds the
 *    verdict, so the worst the return channel does is arrive late.
 *    This keeps admission verdicts independent of response-channel
 *    luck.
 *  - Transport delay does NOT re-time admission: the shard judges the
 *    request at its original virtual arrival. Delay is reported as
 *    `rpc_delay_ms` telemetry. This is what keeps the side-effect-free
 *    Probe == Admit agreement exact under faults; loss and partitions
 *    instead gate *which* requests reach a shard at all.
 */
#ifndef FLEXNERFER_SERVE_TRANSPORT_H_
#define FLEXNERFER_SERVE_TRANSPORT_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

namespace flexnerfer {

/** Tuning for the simulated network. All times are virtual model-ms. */
struct TransportConfig {
    /** One-way delivery latency added to every message. */
    double base_latency_ms = 0.05;
    /** Uniform jitter in [0, jitter_ms) added per delivered message. */
    double jitter_ms = 0.0;
    /** Baseline per-attempt loss probability on every link. */
    double loss = 0.0;
    /** Virtual backoff between retransmit attempts. */
    double retry_backoff_ms = 0.1;
    /** Attempts before a request-direction send fails terminally. */
    std::size_t max_attempts = 4;
};

/**
 * One scheduled fault. `link` selects the shard link (kAllLinks for a
 * cluster-wide event); the window [start_ms, end_ms) is half-open in
 * virtual time. kShardDeath ignores end_ms and magnitude: it marks the
 * link's shard as dying at start_ms, to be consumed exactly once by
 * the controller's death pump.
 */
struct FaultEvent {
    enum class Kind : std::uint8_t {
        kLoss,        //!< adds `magnitude` to per-attempt loss in-window
        kDelaySpike,  //!< adds `magnitude` ms to delivery in-window
        kPartition,   //!< drops every in-window attempt on the link
        kShardDeath,  //!< shard `link` dies at start_ms (end unused)
    };

    Kind kind = Kind::kLoss;
    std::size_t link = 0;
    double start_ms = 0.0;
    double end_ms = 0.0;
    double magnitude = 0.0;
};

/** Deterministic simulated RPC transport (see file comment). */
class SimTransport {
public:
    /** Wildcard link id: the fault applies to every shard link. */
    static constexpr std::size_t kAllLinks = static_cast<std::size_t>(-1);

    enum class Direction : std::uint8_t {
        kRequest = 0,
        kResponse = 1,
    };

    /** Outcome of one logical send (including retransmits). */
    struct Delivery {
        bool delivered = false;
        /** Virtual delivery time (valid when delivered). */
        double deliver_ms = 0.0;
        /** Attempts spent, including the successful one. */
        std::size_t attempts = 0;
    };

    /** Lifetime counters, split by direction. */
    struct Stats {
        std::uint64_t messages = 0;  //!< logical sends
        std::uint64_t delivered = 0;
        std::uint64_t failed = 0;  //!< request sends that exhausted retries
        std::uint64_t dropped_attempts = 0;
        std::uint64_t retries = 0;
        std::uint64_t bytes = 0;  //!< payload bytes of delivered messages
    };

    explicit SimTransport(std::uint64_t seed,
                          const TransportConfig& config = TransportConfig());

    /** Registers a fault. Events may arrive in any order. */
    void Schedule(const FaultEvent& event);

    /**
     * Sends `bytes` over `link` at virtual time `send_ms`. Loss and
     * jitter draws hash (seed, link, direction, ordinal, attempt), where
     * the ordinal counts logical sends per (link, direction) — so
     * request-channel draws depend only on submission order and
     * response-channel draws only on wait order, never on cross-channel
     * interleaving.
     */
    Delivery Transmit(std::size_t link, std::size_t bytes, double send_ms,
                      Direction direction);

    /**
     * Returns scheduled kShardDeath events with start_ms <= now_ms that
     * have not been returned before, ordered by (start_ms, link). The
     * controller pumps this before routing each submission.
     */
    std::vector<FaultEvent> ConsumeDeaths(double now_ms);

    /** Snapshot of the lifetime counters (copied under the lock). */
    Stats stats() const;
    const TransportConfig& config() const { return config_; }
    std::uint64_t seed() const { return seed_; }

private:
    bool PartitionActive(std::size_t link, double at_ms) const;
    double ExtraLoss(std::size_t link, double at_ms) const;
    double ExtraDelay(std::size_t link, double at_ms) const;

    std::uint64_t seed_;
    TransportConfig config_;
    /**
     * Guards windows_/deaths_/ordinals_/stats_. Transmit is called from
     * both Submit (under the cluster mutex) and Finish (outside it), so
     * the transport serializes itself. Determinism is unaffected: draws
     * depend on per-(link, direction) ordinals, not on lock order.
     */
    mutable std::mutex mutex_;
    std::vector<FaultEvent> windows_;  //!< loss/spike/partition events
    std::vector<FaultEvent> deaths_;   //!< sorted by (start_ms, link)
    std::size_t deaths_consumed_ = 0;
    /** Logical-send ordinal per (link, direction). */
    std::map<std::pair<std::size_t, std::uint8_t>, std::uint64_t> ordinals_;
    Stats stats_;
};

}  // namespace flexnerfer

#endif  // FLEXNERFER_SERVE_TRANSPORT_H_
