/**
 * @file
 * Priority/deadline-aware dispatch queue for admitted render requests.
 *
 * Admitted work does not execute in submission order: a deployed
 * renderer serves its highest-priority, most-urgent request first.
 * DispatchQueue orders pending work by (priority descending, absolute
 * deadline ascending, submission sequence ascending) — the sequence
 * tiebreak makes the pop order a total, deterministic function of the
 * pushed set. RenderService pairs each Push with one pool drain task, so
 * a worker always pops the currently most urgent item rather than the
 * one whose submission woke it (see serve/render_service.h).
 *
 * Execution order only affects wall-clock behavior, never results:
 * request outcomes and telemetry are fixed at admission in virtual
 * time. Verdict shaping under contention is the admission tiers' job
 * (weighted fair queueing in serve/admission.h) — the two mechanisms
 * split cleanly: tier = who gets the virtual device's capacity,
 * priority = which already-admitted request a worker runs next.
 *
 * Thread-safety: all members may be called concurrently.
 */
#ifndef FLEXNERFER_SERVE_DISPATCH_QUEUE_H_
#define FLEXNERFER_SERVE_DISPATCH_QUEUE_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <vector>

namespace flexnerfer {

/** One admitted request awaiting a worker. */
struct DispatchItem {
    int priority = 0;           //!< larger runs first
    double deadline_ms = 0.0;   //!< absolute virtual deadline (0 = none)
    std::uint64_t sequence = 0;  //!< submission order tiebreak
    std::function<void()> work;
};

/** Thread-safe max-priority / earliest-deadline-first queue. */
class DispatchQueue
{
  public:
    DispatchQueue() = default;

    DispatchQueue(const DispatchQueue&) = delete;
    DispatchQueue& operator=(const DispatchQueue&) = delete;

    void Push(DispatchItem item);

    /**
     * Pops the most urgent pending item into @p item; returns false
     * when the queue is empty.
     */
    bool Pop(DispatchItem* item);

    std::size_t size() const;

  private:
    struct Urgency {
        bool
        operator()(const DispatchItem& a, const DispatchItem& b) const
        {
            // priority_queue pops the *largest* element, so "a orders
            // after b" must mean "a is less urgent than b".
            if (a.priority != b.priority) return a.priority < b.priority;
            // No deadline (0) is less urgent than any deadline.
            const double da = a.deadline_ms <= 0.0 ? 1e300 : a.deadline_ms;
            const double db = b.deadline_ms <= 0.0 ? 1e300 : b.deadline_ms;
            if (da != db) return da > db;
            return a.sequence > b.sequence;
        }
    };

    mutable std::mutex mutex_;
    std::priority_queue<DispatchItem, std::vector<DispatchItem>, Urgency>
        queue_;
};

}  // namespace flexnerfer

#endif  // FLEXNERFER_SERVE_DISPATCH_QUEUE_H_
