#include "serve/scene_registry.h"

#include <utility>

#include "common/logging.h"

namespace flexnerfer {

void
SceneRegistry::Register(const std::string& name, const SweepPoint& spec)
{
    if (spec.model.empty()) {
        Fatal("scene '" + name +
              "' must name a single model (empty model means a whole "
              "sweep, which is not a servable scene)");
    }
    // Build the model and workload once: the alias guard fingerprints
    // them here and the first touch consumes them. The fingerprint pair
    // is the spec's authoritative identity — exactly the (config,
    // workload) key the PlanCache will use — so two specs that lower to
    // the same frame (e.g. GPU-backend scenes differing only in the
    // precision field the GPU model ignores) collide however their raw
    // SweepPoint fields differ.
    Slot slot;
    slot.spec = spec;
    slot.accel = MakeAccelerator(spec);
    slot.workload = BuildWorkload(spec.model, spec.params);
    slot.stats.name = name;
    std::string key;
    slot.accel->AppendConfigFingerprint(&key);
    AppendFingerprint(slot.workload, &key);

    std::lock_guard<std::mutex> lock(mutex_);
    const auto owner = spec_owners_.emplace(std::move(key), name);
    if (!owner.second) {
        Fatal("scene '" + name + "' duplicates the spec of scene '" +
              owner.first->second +
              "' (alias scenes are not supported: they would split one "
              "frame across two stat rows and break the frame-hit "
              "accounting)");
    }
    const bool inserted = slots_.emplace(name, std::move(slot)).second;
    if (!inserted) Fatal("scene '" + name + "' registered twice");
    order_.push_back(name);
}

std::shared_ptr<const SceneEntry>
SceneRegistry::Touch(const std::string& name, ThreadPool* pool,
                     bool count_request)
{
    std::shared_ptr<std::mutex> prepare_mutex;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = slots_.find(name);
        if (it == slots_.end()) {
            Fatal("request names unregistered scene '" + name + "'");
        }
        if (count_request) ++it->second.stats.requests;
        if (it->second.entry != nullptr) {
            if (count_request) ++it->second.stats.prepared_replays;
            return it->second.entry;
        }
        prepare_mutex = it->second.prepare_mutex;
    }
    // First touch: compile, pin, and estimate outside the registry lock
    // (the expensive half). The per-scene mutex serializes racing first
    // touches so exactly one estimation run executes — losers wake up,
    // find the entry, and take the prepared path like any later touch.
    // Deadlock-free: the preparer never waits on anyone holding either
    // lock (its nested ParallelFor self-helps on the calling thread).
    std::lock_guard<std::mutex> prepare_lock(*prepare_mutex);
    auto entry = std::make_shared<SceneEntry>();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        Slot& slot = slots_.at(name);
        if (slot.entry != nullptr) {
            if (count_request) ++slot.stats.prepared_replays;
            return slot.entry;
        }
        // Holding the prepare mutex: adopt the model and workload that
        // Register built.
        entry->name = name;
        entry->spec = slot.spec;
        entry->accel = std::move(slot.accel);
        entry->workload = std::move(slot.workload);
    }
    entry->frame = cache_.Prepare(*entry->accel, entry->workload);
    entry->cost = cache_.Run(entry->frame, pool);

    std::lock_guard<std::mutex> lock(mutex_);
    Slot& slot = slots_.at(name);
    slot.entry = std::move(entry);
    slot.stats.est_latency_ms = EstimatedServiceMs(slot.entry->cost);
    return slot.entry;
}

std::shared_ptr<const BatchedSceneFrame>
SceneRegistry::TouchBatched(const std::string& name, std::size_t elements,
                            ThreadPool* pool)
{
    if (elements == 0) {
        Fatal("scene '" + name + "': a batch needs at least one element");
    }
    // Administrative touch: ensures the scene is prepared (the fused
    // shapes reuse its accelerator model and workload descriptor)
    // without moving the request counters.
    const std::shared_ptr<const SceneEntry> entry =
        Touch(name, pool, /*count_request=*/false);

    std::shared_ptr<std::mutex> prepare_mutex;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        Slot& slot = slots_.at(name);
        const auto it = slot.batched.find(elements);
        if (it != slot.batched.end()) return it->second;
        prepare_mutex = slot.prepare_mutex;
    }
    // First use of this (scene, element-count) shape: compile, pin, and
    // estimate outside the registry lock, serialized per scene exactly
    // like a first touch, so one estimation run executes per shape
    // however many submits race to open the same batch size.
    std::lock_guard<std::mutex> prepare_lock(*prepare_mutex);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        Slot& slot = slots_.at(name);
        const auto it = slot.batched.find(elements);
        if (it != slot.batched.end()) return it->second;
    }
    auto batched = std::make_shared<BatchedSceneFrame>();
    batched->elements = elements;
    if (elements == 1) {
        // The 1-element "batch" is the scene itself: alias its prepared
        // entry so a singleton flush replays the same memoized frame.
        batched->frame = entry->frame;
        batched->cost = entry->cost;
    } else {
        const NerfWorkload fused = FuseBatch(entry->workload, elements);
        batched->frame = cache_.Prepare(*entry->accel, fused);
        batched->cost = cache_.Run(batched->frame, pool);
    }
    std::lock_guard<std::mutex> lock(mutex_);
    Slot& slot = slots_.at(name);
    return slot.batched.emplace(elements, std::move(batched))
        .first->second;
}

std::shared_ptr<const DeltaSceneFrame>
SceneRegistry::TouchDelta(const std::string& name,
                          std::size_t reuse_quantum,
                          std::size_t reuse_quanta, ThreadPool* pool)
{
    if (reuse_quanta < 1 || reuse_quantum > reuse_quanta) {
        Fatal("scene '" + name + "': reuse quantum " +
              std::to_string(reuse_quantum) + " of " +
              std::to_string(reuse_quanta) + " is not a valid fraction");
    }
    // Administrative touch: ensures the scene is prepared (delta shapes
    // hang off its pinned handle and reuse its model and workload)
    // without moving the request counters.
    const std::shared_ptr<const SceneEntry> entry =
        Touch(name, pool, /*count_request=*/false);

    std::shared_ptr<std::mutex> prepare_mutex;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        Slot& slot = slots_.at(name);
        const auto it = slot.deltas.find(reuse_quantum);
        if (it != slot.deltas.end()) return it->second;
        prepare_mutex = slot.prepare_mutex;
    }
    // First use of this (scene, reuse-quantum) shape: compile, pin, and
    // estimate outside the registry lock, serialized per scene exactly
    // like a first touch, so one estimation run executes per shape
    // however many session frames race to the same coherence level.
    std::lock_guard<std::mutex> prepare_lock(*prepare_mutex);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        Slot& slot = slots_.at(name);
        const auto it = slot.deltas.find(reuse_quantum);
        if (it != slot.deltas.end()) return it->second;
    }
    auto delta = std::make_shared<DeltaSceneFrame>();
    delta->reuse_quantum = reuse_quantum;
    delta->reuse_quanta = reuse_quanta;
    if (reuse_quantum == 0) {
        // Zero reuse is the scene itself: alias its prepared entry so a
        // no-overlap frame replays the same memoized full frame.
        delta->frame = entry->frame;
        delta->cost = entry->cost;
    } else {
        const NerfWorkload shrunken =
            DeltaWorkload(entry->workload, reuse_quantum, reuse_quanta);
        delta->frame =
            cache_.PrepareDelta(entry->frame, *entry->accel, shrunken);
        delta->cost = cache_.Run(delta->frame, pool);
    }
    std::lock_guard<std::mutex> lock(mutex_);
    Slot& slot = slots_.at(name);
    return slot.deltas.emplace(reuse_quantum, std::move(delta))
        .first->second;
}

void
SceneRegistry::CountOutcome(const std::string& name, bool accepted,
                            bool shed)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = slots_.find(name);
    if (it == slots_.end()) return;
    if (accepted) {
        ++it->second.stats.accepted;
    } else if (shed) {
        ++it->second.stats.shed;
    } else {
        ++it->second.stats.rejected;
    }
}

bool
SceneRegistry::Has(const std::string& name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return slots_.find(name) != slots_.end();
}

std::size_t
SceneRegistry::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return slots_.size();
}

std::vector<std::string>
SceneRegistry::Names() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return order_;
}

std::vector<SceneStats>
SceneRegistry::Stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<SceneStats> stats;
    stats.reserve(order_.size());
    for (const std::string& name : order_) {
        stats.push_back(slots_.at(name).stats);
    }
    return stats;
}

}  // namespace flexnerfer
