/**
 * @file
 * Rendezvous (highest-random-weight) routing of scenes to shards.
 *
 * A sharded deployment wants every request for one scene to land on the
 * replica that already holds that scene's prepared-frame pin — routing
 * to state, not to load. Rendezvous hashing gives that affinity without
 * a routing table: every (scene, shard) pair gets a stable pseudo-random
 * weight, and a scene's home is the shard with the highest weight. The
 * full descending-weight order doubles as the spill preference list
 * (serve/cluster.h tries the next-ranked shard when the home is
 * overloaded), and shard-count changes move the provable minimum of
 * scenes: growing N -> N+1 relocates only scenes whose new top weight is
 * on the added shard (~1/(N+1) of them), and shrinking N -> M relocates
 * only scenes whose home was a removed shard — every weight among the
 * survivors is unchanged, so surviving homes never move.
 *
 * Determinism: weights mix a FNV-1a digest of the scene name with the
 * shard index through the splitmix64 finalizer — fixed-width unsigned
 * arithmetic only, so rankings are identical on every platform, run,
 * and thread count (the routing half of the serving determinism
 * contract; see serve/render_service.h).
 *
 * Thread-safety: immutable after construction; all members may be
 * called concurrently.
 */
#ifndef FLEXNERFER_SERVE_SHARD_ROUTER_H_
#define FLEXNERFER_SERVE_SHARD_ROUTER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace flexnerfer {

/** Maps scene ids to a deterministic shard preference order. */
class ShardRouter
{
  public:
    /** A router over @p shards replicas (>= 1; fatal otherwise). */
    explicit ShardRouter(std::size_t shards);

    std::size_t shards() const { return shards_; }

    /** The scene's home shard: argmax over Weight(scene, shard). */
    std::size_t Home(const std::string& scene) const;

    /**
     * All shard indices ordered by descending weight (index ascending
     * breaks the ~2^-64 ties): Rank(scene)[0] is the home, [1] the
     * first spill candidate, and so on.
     */
    std::vector<std::size_t> Rank(const std::string& scene) const;

    /**
     * The stable rendezvous weight of (scene, shard). Pure and
     * platform-independent; exposed so tests can verify rankings and
     * the minimal-movement property from first principles.
     */
    static std::uint64_t Weight(const std::string& scene,
                                std::size_t shard);

  private:
    std::size_t shards_;
};

}  // namespace flexnerfer

#endif  // FLEXNERFER_SERVE_SHARD_ROUTER_H_
