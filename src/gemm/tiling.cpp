#include "gemm/tiling.h"

#include "common/logging.h"

namespace flexnerfer {

int
TileCount(int total, int tile)
{
    FLEX_CHECK(total >= 0 && tile >= 1);
    return (total + tile - 1) / tile;
}

MatrixI
ExtractTile(const MatrixI& m, int r0, int c0, int rows, int cols)
{
    MatrixI tile(rows, cols);
    for (int r = 0; r < rows; ++r) {
        const int src_r = r0 + r;
        if (src_r >= m.rows()) break;
        for (int c = 0; c < cols; ++c) {
            const int src_c = c0 + c;
            if (src_c >= m.cols()) break;
            tile.at(r, c) = m.at(src_r, src_c);
        }
    }
    return tile;
}

std::vector<int>
ColumnNnz(const MatrixI& tile)
{
    std::vector<int> nnz(tile.cols(), 0);
    for (int r = 0; r < tile.rows(); ++r) {
        for (int c = 0; c < tile.cols(); ++c) {
            if (tile.at(r, c) != 0) ++nnz[c];
        }
    }
    return nnz;
}

std::vector<int>
RowNnz(const MatrixI& tile)
{
    std::vector<int> nnz(tile.rows(), 0);
    for (int r = 0; r < tile.rows(); ++r) {
        for (int c = 0; c < tile.cols(); ++c) {
            if (tile.at(r, c) != 0) ++nnz[r];
        }
    }
    return nnz;
}

}  // namespace flexnerfer
