#include "gemm/engine.h"

#include <algorithm>
#include <cmath>

#include "common/fingerprint.h"
#include "common/logging.h"
#include "common/units.h"
#include "gemm/mapper.h"
#include "gemm/tiling.h"
#include "mac/mac_array.h"
#include "mac/reduction_tree.h"
#include "noc/clb.h"
#include "sparse/flex_codec.h"
#include "sparse/footprint.h"
#include "sparse/format_selector.h"

namespace flexnerfer {
namespace {

/** Tree depth of a power-of-two NoC spanning @p leaves. */
double
TreeDepth(int leaves)
{
    return std::ceil(std::log2(std::max(2, leaves)));
}

}  // namespace

void
AppendFingerprint(const GemmEngineConfig& config, std::string* out)
{
    FingerprintAppend(out, static_cast<std::uint8_t>(config.precision));
    FingerprintAppend(out, config.array_dim);
    FingerprintAppend(out, config.clock_ghz);
    FingerprintAppend(out, config.support_sparsity);
    FingerprintAppend(out, config.use_flex_codec);
    FingerprintAppend(out, config.use_clb);
    FingerprintAppend(out, config.detailed);
    FingerprintAppend(out, config.compute_output);
    FingerprintAppend(out, static_cast<std::uint8_t>(config.noc_style));
    FingerprintAppend(out, config.fetch_bytes_per_cycle);
    FingerprintAppend(out, config.codec_bytes_per_cycle);
    FingerprintAppend(out, config.stream_a_from_dram);
    FingerprintAppend(out, config.write_c_to_dram);
    FingerprintAppend(out, config.dram_bandwidth_gb_s);
    FingerprintAppend(out, config.dram_energy_pj_per_byte);
    FingerprintAppend(out, config.sram_read_energy_pj_per_byte);
    FingerprintAppend(out, config.codec_energy_pj_per_byte);
    FingerprintAppend(out, config.noc.leaves);
    FingerprintAppend(out, config.noc.feedback);
    FingerprintAppend(out, config.noc.hop_energy_pj);
    FingerprintAppend(out, config.noc.hop_energy_2x2_pj);
    FingerprintAppend(out, config.noc.buffer_read_energy_pj);
    FingerprintAppend(out, config.mesh.nodes);
    FingerprintAppend(out, config.mesh.hop_energy_pj);
    FingerprintAppend(out, config.mesh.buffer_read_energy_pj);
}

void
AppendFingerprint(const GemmShape& shape, std::string* out)
{
    FingerprintAppend(out, shape.m);
    FingerprintAppend(out, shape.k);
    FingerprintAppend(out, shape.n);
    FingerprintAppend(out, shape.density_a);
    FingerprintAppend(out, shape.density_b);
    FingerprintAppend(out, shape.structured_prune_b);
}

GemmEngine::GemmEngine(const GemmEngineConfig& config)
    : config_(config)
{
    FLEX_CHECK_MSG(config.array_dim >= 1, "array dim must be positive");
    FLEX_CHECK_MSG(config.clock_ghz > 0.0, "clock must be positive");
    FLEX_CHECK_MSG(config.fetch_bytes_per_cycle > 0.0,
                   "fetch bandwidth must be positive");
}

int
GemmEngine::GridDim() const
{
    return config_.array_dim * GridScale(config_.precision);
}

std::int64_t
GemmEngine::SlotsPerWave() const
{
    return static_cast<std::int64_t>(GridDim()) * GridDim();
}

GemmResult
GemmEngine::Run(const MatrixI& a, const MatrixI& b) const
{
    FLEX_CHECK_MSG(a.cols() == b.rows(), "GEMM shape mismatch");
    return config_.detailed ? RunDetailed(a, b) : RunTiled(a, b);
}

GemmResult
GemmEngine::RunDetailed(const MatrixI& a, const MatrixI& b) const
{
    const int t = GridDim();
    const DenseMapper mapper(t);
    const MacArray array(
        {config_.array_dim, config_.clock_ghz, /*optimized_shifters=*/true});

    DistributionNetwork::Config dn_config;
    dn_config.dim = t;
    dn_config.noc = config_.noc;
    dn_config.noc.feedback = config_.noc_style == NocStyle::kHmfTree;
    dn_config.mesh = config_.mesh;
    DistributionNetwork dn(dn_config);

    Aggregates agg;
    agg.hops_from_simulation = true;
    agg.tiles_i = TileCount(a.rows(), t);
    agg.tiles_j = TileCount(b.cols(), t);
    const int tiles_k = TileCount(a.cols(), t);

    Matrix<std::int64_t> c(a.rows(), b.cols());
    const FlexFormatCodec codec(
        {config_.array_dim, config_.codec_bytes_per_cycle});

    WaveStats noc_totals;
    for (int ti = 0; ti < agg.tiles_i; ++ti) {
        for (int tj = 0; tj < agg.tiles_j; ++tj) {
            for (int tk = 0; tk < tiles_k; ++tk) {
                const MatrixI a_tile = ExtractTile(a, ti * t, tk * t, t, t);
                const MatrixI b_tile = ExtractTile(b, tk * t, tj * t, t, t);

                if (tj == 0) {
                    const EncodedTile ea = config_.use_flex_codec
                        ? codec.Encode(a_tile, config_.precision)
                        : codec.EncodeAs(a_tile, config_.precision,
                                         SparsityFormat::kNone);
                    agg.a_bits_encoded += static_cast<double>(ea.encoded_bits);
                    agg.a_format = ea.format;
                }
                if (ti == 0) {
                    const EncodedTile eb = config_.use_flex_codec
                        ? codec.Encode(b_tile, config_.precision)
                        : codec.EncodeAs(b_tile, config_.precision,
                                         SparsityFormat::kNone);
                    agg.b_bits_encoded += static_cast<double>(eb.encoded_bits);
                    agg.b_format = eb.format;
                }

                dn.StartTile();
                const auto waves = mapper.MapTilePair(
                    a_tile, b_tile, static_cast<std::int64_t>(ti) * t,
                    static_cast<std::int64_t>(tk) * t,
                    static_cast<std::int64_t>(tj) * t, b.cols(),
                    config_.support_sparsity);

                for (const MappedWave& wave : waves) {
                    const WaveStats ws =
                        dn.DistributeWave(wave.groups, wave.distinct_b);
                    noc_totals.switch_hops += ws.switch_hops;
                    noc_totals.mesh_hops += ws.mesh_hops;
                    noc_totals.buffer_reads += ws.buffer_reads;
                    noc_totals.feedback_uses += ws.feedback_uses;
                    noc_totals.unicast_groups += ws.unicast_groups;
                    noc_totals.multicast_groups += ws.multicast_groups;
                    noc_totals.broadcast_groups += ws.broadcast_groups;

                    agg.a_deliveries += static_cast<double>(wave.groups.size());
                    agg.b_deliveries += wave.distinct_b;
                    agg.waves += 1.0;
                    agg.issued_macs += static_cast<double>(wave.slots.size());
                    for (const MappedOperand& slot : wave.slots) {
                        if (slot.a != 0 && slot.b != 0) agg.useful_macs += 1.0;
                    }

                    if (config_.compute_output) {
                        // Execute the wave on the bit-scalable datapath and
                        // accumulate the reduced partial sums.
                        const auto partials =
                            array.ComputeMapped(config_.precision, wave.slots);
                        const std::int64_t c_elems =
                            static_cast<std::int64_t>(a.rows()) * b.cols();
                        for (const ReductionOperand& p : partials) {
                            if (p.index >= c_elems) {
                                // Padding products in the dense baseline can
                                // target ghost rows; they are always zero.
                                FLEX_CHECK(p.value == 0);
                                continue;
                            }
                            const int r = static_cast<int>(p.index / b.cols());
                            const int col =
                                static_cast<int>(p.index % b.cols());
                            c.at(r, col) += p.value;
                        }
                    }
                }
            }
        }
    }

    agg.noc_hops = static_cast<double>(noc_totals.switch_hops);
    agg.mesh_hops = static_cast<double>(noc_totals.mesh_hops);
    agg.buffer_reads = static_cast<double>(noc_totals.buffer_reads);
    agg.a_bits_raw = static_cast<double>(TileCount(a.rows(), t)) * tiles_k *
                     DenseFootprintBits(t, t, config_.precision);
    agg.b_bits_raw = static_cast<double>(tiles_k) * agg.tiles_j *
                     DenseFootprintBits(t, t, config_.precision);
    agg.c_bytes_out = static_cast<double>(a.rows()) * b.cols() *
                      BitWidth(config_.precision) / 8.0;

    GemmResult result = AssembleCosts(agg);
    result.noc = noc_totals;
    if (config_.compute_output) result.output = std::move(c);
    return result;
}

GemmResult
GemmEngine::RunTiled(const MatrixI& a, const MatrixI& b) const
{
    const int t = GridDim();
    const double slots = static_cast<double>(SlotsPerWave());

    Aggregates agg;
    agg.tiles_i = TileCount(a.rows(), t);
    agg.tiles_j = TileCount(b.cols(), t);
    const int tiles_k = TileCount(a.cols(), t);

    // Per-tile non-zero profiles, computed once per operand tile.
    for (int ti = 0; ti < agg.tiles_i; ++ti) {
        for (int tk = 0; tk < tiles_k; ++tk) {
            const MatrixI a_tile = ExtractTile(a, ti * t, tk * t, t, t);
            const auto a_cols = ColumnNnz(a_tile);
            const auto a_nnz = static_cast<std::int64_t>(a_tile.Nnz());
            const SparsityFormat fa = config_.use_flex_codec
                ? SelectOptimalFormat(t, t, a_nnz, config_.precision)
                : SparsityFormat::kNone;
            agg.a_format = fa;
            agg.a_bits_encoded += static_cast<double>(
                FootprintBits(fa, t, t, a_nnz, config_.precision));
            agg.a_bits_raw +=
                static_cast<double>(DenseFootprintBits(t, t,
                                                       config_.precision));

            for (int tj = 0; tj < agg.tiles_j; ++tj) {
                const MatrixI b_tile = ExtractTile(b, tk * t, tj * t, t, t);
                const auto b_rows = RowNnz(b_tile);
                const auto b_nnz = static_cast<std::int64_t>(b_tile.Nnz());
                if (ti == 0) {
                    const SparsityFormat fb = config_.use_flex_codec
                        ? SelectOptimalFormat(t, t, b_nnz, config_.precision)
                        : SparsityFormat::kNone;
                    agg.b_format = fb;
                    agg.b_bits_encoded += static_cast<double>(
                        FootprintBits(fb, t, t, b_nnz, config_.precision));
                    agg.b_bits_raw += static_cast<double>(
                        DenseFootprintBits(t, t, config_.precision));
                }

                double useful = 0.0;
                double a_live = 0.0;  // A elements with >= 1 product
                for (int kk = 0; kk < t; ++kk) {
                    useful += static_cast<double>(a_cols[kk]) * b_rows[kk];
                    if (b_rows[kk] > 0) a_live += a_cols[kk];
                }
                agg.useful_macs += useful;
                // Matrix-2 (weight) tiles are loaded into MAC-local
                // registers once per (k, j) strip and stay resident while
                // all i tiles of matrix 1 stream through the NoC.
                if (config_.support_sparsity) {
                    const double waves = std::ceil(useful / slots);
                    agg.waves += waves;
                    agg.issued_macs += useful;
                    agg.a_deliveries += a_live;
                    if (ti == 0) {
                        agg.b_deliveries += static_cast<double>(b_nnz);
                    }
                } else {
                    // Dense baseline: one wave per k slice, zeros included.
                    agg.waves += t;
                    agg.issued_macs += slots * t;
                    agg.a_deliveries += slots;
                    if (ti == 0) {
                        agg.b_deliveries += slots;
                    }
                }
            }
        }
    }

    agg.c_bytes_out = static_cast<double>(a.rows()) * b.cols() *
                      BitWidth(config_.precision) / 8.0;
    EstimateNocTraffic(&agg);

    GemmResult result = AssembleCosts(agg);
    if (config_.compute_output) {
        result.output = ReferenceGemm(a, b);
    }
    return result;
}

GemmResult
GemmEngine::RunFromShape(const GemmShape& shape) const
{
    const int t = GridDim();
    const double slots = static_cast<double>(SlotsPerWave());

    Aggregates agg;
    agg.tiles_i = TileCount(static_cast<int>(shape.m), t);
    agg.tiles_j = TileCount(static_cast<int>(shape.n), t);
    const double tiles_k = TileCount(static_cast<int>(shape.k), t);
    const double tile_triples = agg.tiles_i * tiles_k * agg.tiles_j;

    const double m = static_cast<double>(shape.m);
    const double k = static_cast<double>(shape.k);
    const double n = static_cast<double>(shape.n);
    const double alive = 1.0 - shape.structured_prune_b;
    FLEX_CHECK_MSG(alive > 0.0 && alive <= 1.0,
                   "structured pruning ratio outside [0,1)");
    const double nnz_a = m * k * shape.density_a;
    const double nnz_b = k * alive * n * shape.density_b;

    agg.useful_macs = m * k * n * shape.density_a * shape.density_b * alive;

    if (config_.support_sparsity) {
        // Waves are granular per tile triple: at least one wave each.
        const double useful_per_triple = agg.useful_macs / tile_triples;
        agg.waves =
            tile_triples * std::max(1.0, std::ceil(useful_per_triple / slots));
        agg.issued_macs = agg.useful_macs;
        // A elements whose B row was structurally pruned are never
        // delivered; weight tiles load once per (k, j) strip.
        agg.a_deliveries = nnz_a * alive * agg.tiles_j;
        agg.b_deliveries = nnz_b;
    } else {
        agg.waves = tile_triples * t;
        agg.issued_macs = agg.waves * slots;
        agg.a_deliveries = tile_triples * slots;
        agg.b_deliveries = tiles_k * agg.tiles_j * slots;
    }

    // Expected per-tile footprints drive the stored format choice.
    const double tile_elems = slots;
    const auto a_tile_nnz = static_cast<std::int64_t>(
        std::llround(tile_elems * shape.density_a));
    const auto b_tile_nnz = static_cast<std::int64_t>(
        std::llround(tile_elems * shape.density_b * alive));
    agg.a_format = config_.use_flex_codec
        ? SelectOptimalFormat(t, t, a_tile_nnz, config_.precision)
        : SparsityFormat::kNone;
    agg.b_format = config_.use_flex_codec
        ? SelectOptimalFormat(t, t, b_tile_nnz, config_.precision)
        : SparsityFormat::kNone;
    agg.a_bits_encoded =
        agg.tiles_i * tiles_k *
        static_cast<double>(FootprintBits(agg.a_format, t, t, a_tile_nnz,
                                          config_.precision));
    agg.b_bits_encoded =
        tiles_k * agg.tiles_j *
        static_cast<double>(FootprintBits(agg.b_format, t, t, b_tile_nnz,
                                          config_.precision));
    agg.a_bits_raw = agg.tiles_i * tiles_k *
                     static_cast<double>(DenseFootprintBits(
                         t, t, config_.precision));
    agg.b_bits_raw = tiles_k * agg.tiles_j *
                     static_cast<double>(DenseFootprintBits(
                         t, t, config_.precision));
    agg.c_bytes_out = m * n * BitWidth(config_.precision) / 8.0;

    EstimateNocTraffic(&agg);
    return AssembleCosts(agg);
}

void
GemmEngine::EstimateNocTraffic(Aggregates* agg) const
{
    const int t = GridDim();
    const double depth = TreeDepth(t);
    const double avg_group =
        agg->a_deliveries > 0.0
            ? std::clamp(agg->useful_macs / agg->a_deliveries, 1.0,
                         static_cast<double>(t))
            : 1.0;

    switch (config_.noc_style) {
      case NocStyle::kHmfTree:
      case NocStyle::kHmTree:
        // Multicast prefix sharing: a group's union-of-paths edge count is
        // roughly its destination count plus the tree depth.
        agg->noc_hops = agg->a_deliveries * (depth + avg_group);
        break;
      case NocStyle::kBenes:
        // The Benes fabric scatters one operand copy per multiplier slot;
        // every copy traverses every stage (no shared multicast prefixes).
        agg->noc_hops =
            (agg->useful_macs + agg->b_deliveries) * (2.0 * depth - 1.0);
        break;
    }
    agg->mesh_hops =
        agg->b_deliveries * (static_cast<double>(t) + 1.0) / 2.0;
    agg->buffer_reads = agg->a_deliveries + agg->b_deliveries;
}

GemmResult
GemmEngine::AssembleCosts(const Aggregates& agg) const
{
    GemmResult result;
    const double bits = BitWidth(config_.precision);
    const double slots = static_cast<double>(SlotsPerWave());
    const MacArray array(
        {config_.array_dim, config_.clock_ghz, /*optimized_shifters=*/true});

    result.waves = agg.waves;
    result.useful_macs = agg.useful_macs;
    result.issued_macs = agg.issued_macs;
    result.utilization =
        agg.waves > 0.0 ? agg.useful_macs / (agg.waves * slots) : 0.0;
    result.a_deliveries = agg.a_deliveries;
    result.b_deliveries = agg.b_deliveries;
    result.a_format = agg.a_format;
    result.b_format = agg.b_format;
    result.a_bytes_encoded = agg.a_bits_encoded / 8.0;
    result.b_bytes_encoded = agg.b_bits_encoded / 8.0;
    result.noc.switch_hops = static_cast<std::int64_t>(agg.noc_hops);
    result.noc.mesh_hops = static_cast<std::int64_t>(agg.mesh_hops);
    result.noc.buffer_reads = static_cast<std::int64_t>(agg.buffer_reads);

    // --- Cycles -----------------------------------------------------------
    // Compute: one wave per cycle plus the pipelined reduction drain.
    // Without the column-level bypass links, loading the next wave's
    // operands into the sub-multiplier rows takes multiple cycles at
    // high precision (Fig. 10(b)), stalling wave issue.
    const double wave_issue_cycles = config_.use_clb
        ? 1.0
        : static_cast<double>(
              ColumnBypassLink::LoadCycles(config_.precision, false));
    result.compute_cycles =
        agg.waves * wave_issue_cycles +
        FlexibleReductionTree::DepthForLeaves(static_cast<int>(slots));

    // Fetch: operand deliveries stream from the buffers into the array.
    const double delivery_bytes =
        (agg.a_deliveries + agg.b_deliveries) * bits / 8.0;
    result.fetch_cycles = delivery_bytes / config_.fetch_bytes_per_cycle;

    // Codec: the decoder sits inline on the delivery stream (operands are
    // stored compressed, so decode traffic is the compressed image of the
    // delivered words); inputs are additionally encoded once online.
    if (config_.use_flex_codec) {
        const double raw_bits = agg.a_bits_raw + agg.b_bits_raw;
        const double compress_ratio =
            raw_bits > 0.0
                ? (agg.a_bits_encoded + agg.b_bits_encoded) / raw_bits
                : 1.0;
        const double codec_bytes =
            delivery_bytes * compress_ratio + agg.a_bits_encoded / 8.0;
        result.codec_cycles = codec_bytes / config_.codec_bytes_per_cycle;
        result.energy.codec =
            codec_bytes * config_.codec_energy_pj_per_byte;
    }

    // Fetch, the inline codec, and compute form a pipelined triple-stage:
    // the slowest stage sets throughput (double-buffered tiles).
    result.cycles = std::max({result.fetch_cycles, result.codec_cycles,
                              result.compute_cycles}) +
                    FlexibleReductionTree::DepthForLeaves(
                        static_cast<int>(slots));
    result.onchip_ms = CyclesToMs(result.cycles, config_.clock_ghz);

    // --- DRAM -------------------------------------------------------------
    // Weights always stream from local DRAM once (compressed if the codec
    // is active). Activations/outputs touch DRAM only when not resident in
    // the on-chip buffers (standalone GEMMs, first/last layer of a chain).
    result.dram_bytes = agg.b_bits_encoded / 8.0;
    if (config_.stream_a_from_dram) {
        result.dram_bytes += agg.a_bits_encoded / 8.0;
    }
    if (config_.write_c_to_dram) {
        result.dram_bytes += agg.c_bytes_out;
    }
    result.dram_ms =
        result.dram_bytes / (config_.dram_bandwidth_gb_s * 1e9) * 1e3;
    result.latency_ms = std::max(result.onchip_ms, result.dram_ms);

    // --- Energy -----------------------------------------------------------
    const double mac_energy_ops =
        config_.support_sparsity ? agg.useful_macs : agg.issued_macs;
    result.energy.mac =
        mac_energy_ops * array.MacEnergyPj(config_.precision);

    const double hop_energy = config_.noc_style == NocStyle::kHmTree
        ? config_.noc.hop_energy_2x2_pj
        : config_.noc.hop_energy_pj;
    result.energy.noc = agg.noc_hops * hop_energy +
                        agg.mesh_hops * config_.mesh.hop_energy_pj;

    result.sram_bytes = delivery_bytes + agg.c_bytes_out;
    result.energy.sram =
        result.sram_bytes * config_.sram_read_energy_pj_per_byte;
    result.energy.dram =
        result.dram_bytes * config_.dram_energy_pj_per_byte;
    return result;
}

}  // namespace flexnerfer
