/**
 * @file
 * Cycle-level GEMM/GEMV engine.
 *
 * Models the full pipeline of FlexNeRFer's GEMM/GEMV acceleration unit and
 * of the baseline compute arrays: operand tiles are fetched (compressed or
 * raw), decoded, distributed across the MAC array by the NoC, executed in
 * dense-mapped waves, reduced, and written back.
 *
 * Three fidelity levels share one cost-assembly path:
 *  - detailed: per-wave NoC + datapath simulation (small shapes, tests);
 *  - tiled:    per-tile non-zero analysis with analytic NoC costs;
 *  - statistical: expectation-based, for large workload sweeps.
 */
#ifndef FLEXNERFER_GEMM_ENGINE_H_
#define FLEXNERFER_GEMM_ENGINE_H_

#include <cstdint>

#include "common/matrix.h"
#include "common/types.h"
#include "noc/distribution_network.h"
#include "noc/hmf_noc.h"
#include "noc/mesh_1d.h"

namespace flexnerfer {

/** Interconnect style of the modelled compute array. */
enum class NocStyle : std::uint8_t {
    kHmfTree,  //!< FlexNeRFer: HMF-NoC multicast tree + 1D mesh
    kHmTree,   //!< Eyeriss-v2-style HM-NoC (no feedback, 2x2 switches)
    kBenes,    //!< SIGMA-style Benes fabric (all deliveries cross all stages)
};

/** Configuration of one modelled GEMM/GEMV array. */
struct GemmEngineConfig {
    Precision precision = Precision::kInt16;
    int array_dim = 64;                //!< MAC units per side
    double clock_ghz = 0.8;
    bool support_sparsity = true;      //!< dense mapping of sparse operands
    bool use_flex_codec = true;        //!< compressed operand storage
    /**
     * Column-level bypass links inside each MAC unit (Section 4.1.3).
     * Without them, 16-/8-bit subwords must be re-fetched for each
     * sub-multiplier row group, cutting operand bandwidth utilization to
     * 25% / 50% at INT16 / INT8.
     */
    bool use_clb = true;
    bool detailed = false;             //!< per-wave NoC/datapath simulation
    bool compute_output = true;        //!< produce the numeric result
    NocStyle noc_style = NocStyle::kHmfTree;
    /**
     * Buffer-to-array distribution bandwidth. The I-buffer is banked wide
     * enough that dense mapping stays compute-bound at INT16/INT8; INT4
     * waves consume operands fast enough to become partially BW-bound,
     * matching the paper's effective-efficiency gap at INT4.
     */
    double fetch_bytes_per_cycle = 1024.0;
    double codec_bytes_per_cycle = 1024.0;
    /**
     * Whether operand A (activations) is streamed from DRAM or already
     * resident in the input buffer (hidden layers of an MLP chain), and
     * whether C returns to DRAM or feeds the next layer on-chip.
     */
    bool stream_a_from_dram = true;
    bool write_c_to_dram = true;
    double dram_bandwidth_gb_s = 12.8;  //!< LPDDR3 local DRAM
    double dram_energy_pj_per_byte = 40.0;
    double sram_read_energy_pj_per_byte = 0.85;  //!< 2 MB I-buffer class
    double codec_energy_pj_per_byte = 0.10;
    HmfNoc::Config noc;
    Mesh1d::Config mesh;
};

/** Energy totals by component, in pJ. */
struct EnergyBreakdownPj {
    double mac = 0.0;
    double noc = 0.0;
    double sram = 0.0;
    double dram = 0.0;
    double codec = 0.0;

    double TotalPj() const { return mac + noc + sram + dram + codec; }
    double TotalMj() const { return TotalPj() * 1e-9; }
};

/** Shape-and-density description for the statistical path. */
struct GemmShape {
    std::int64_t m = 1;
    std::int64_t k = 1;
    std::int64_t n = 1;
    double density_a = 1.0;  //!< fraction of non-zeros in the M x K operand
    double density_b = 1.0;  //!< density within surviving rows of B
    /**
     * Fraction of B's K rows removed by structured pruning (Fig. 19).
     * Matrix-1 elements whose inner-dimension row was pruned produce no
     * products and are never delivered.
     */
    double structured_prune_b = 0.0;
};

/** Output of one engine run. */
struct GemmResult {
    Matrix<std::int64_t> output;   //!< empty unless compute_output

    double waves = 0.0;            //!< mapped compute waves (1 per cycle)
    double compute_cycles = 0.0;
    double fetch_cycles = 0.0;
    double codec_cycles = 0.0;
    double cycles = 0.0;           //!< pipelined on-chip total
    double onchip_ms = 0.0;
    double dram_ms = 0.0;
    double latency_ms = 0.0;       //!< max(on-chip, DRAM) — double-buffered

    double useful_macs = 0.0;      //!< non-zero products
    double issued_macs = 0.0;      //!< products issued incl. forced zeros
    double utilization = 0.0;      //!< useful / (waves * slots)

    double a_deliveries = 0.0;     //!< matrix-1 element deliveries
    double b_deliveries = 0.0;     //!< matrix-2 element deliveries
    double a_bytes_encoded = 0.0;  //!< stored footprint of operand A
    double b_bytes_encoded = 0.0;
    double dram_bytes = 0.0;
    double sram_bytes = 0.0;

    SparsityFormat a_format = SparsityFormat::kNone;
    SparsityFormat b_format = SparsityFormat::kNone;

    WaveStats noc;                 //!< hop/dataflow counters
    EnergyBreakdownPj energy;

    double EnergyMj() const { return energy.TotalMj(); }
};

/**
 * Appends an injective fingerprint of every cost-relevant field of
 * @p config (including the nested NoC/mesh configs) to @p out. Two
 * configs share a fingerprint iff every field is bit-identical, which is
 * what lets GemmMemo/PlanCache treat key equality as config equality.
 */
void AppendFingerprint(const GemmEngineConfig& config, std::string* out);

/** Appends an injective fingerprint of @p shape to @p out. */
void AppendFingerprint(const GemmShape& shape, std::string* out);

/**
 * The engine. Stateless between runs; safe to reuse.
 *
 * Thread-safety: Run/RunFromShape are deeply const — the engine holds only
 * its immutable config, and every stateful collaborator (DistributionNetwork,
 * MacArray, FlexFormatCodec) is constructed locally per invocation. One
 * GemmEngine instance may therefore serve concurrent calls from SweepRunner
 * or BatchSession workers without synchronization. Results are a pure
 * function of (config, operands): no RNG, clocks, or global counters are
 * consulted, which is what makes parallel sweeps bit-reproducible.
 */
class GemmEngine
{
  public:
    explicit GemmEngine(const GemmEngineConfig& config);
    GemmEngine() : GemmEngine(GemmEngineConfig{}) {}

    /**
     * Runs C = A * B on materialized operands. Uses the detailed per-wave
     * simulation when config.detailed is set, else the tiled analytic path.
     */
    GemmResult Run(const MatrixI& a, const MatrixI& b) const;

    /** Expectation-based run for large workload sweeps (no operand data). */
    GemmResult RunFromShape(const GemmShape& shape) const;

    /** Effective multiplier grid side at the configured precision. */
    int GridDim() const;

    /** Multiplier slots available per wave. */
    std::int64_t SlotsPerWave() const;

    const GemmEngineConfig& config() const { return config_; }

  private:
    struct Aggregates {
        double useful_macs = 0.0;
        double issued_macs = 0.0;
        double waves = 0.0;
        double a_deliveries = 0.0;
        double b_deliveries = 0.0;
        double a_bits_encoded = 0.0;
        double b_bits_encoded = 0.0;
        double a_bits_raw = 0.0;
        double b_bits_raw = 0.0;
        double c_bytes_out = 0.0;
        double tiles_j = 1.0;
        double tiles_i = 1.0;
        double noc_hops = 0.0;       //!< tree/Benes switch hops
        double mesh_hops = 0.0;
        double buffer_reads = 0.0;
        SparsityFormat a_format = SparsityFormat::kNone;
        SparsityFormat b_format = SparsityFormat::kNone;
        bool hops_from_simulation = false;
    };

    GemmResult RunDetailed(const MatrixI& a, const MatrixI& b) const;
    GemmResult RunTiled(const MatrixI& a, const MatrixI& b) const;

    /** Fills analytic NoC hop counts when not simulated per wave. */
    void EstimateNocTraffic(Aggregates* agg) const;

    /** Turns aggregates into cycles, latency, and energy. */
    GemmResult AssembleCosts(const Aggregates& agg) const;

    GemmEngineConfig config_;
};

}  // namespace flexnerfer

#endif  // FLEXNERFER_GEMM_ENGINE_H_
