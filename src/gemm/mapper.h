/**
 * @file
 * Dense mapper: packs the non-zero products of a sparse irregular tile pair
 * onto the effective multiplier grid with no idle slots except in the final
 * wave (the Fig. 5 / Fig. 11 mapping of the paper).
 *
 * Products are grouped by matrix-1 element: element A[i,k] forms one
 * multicast group whose destinations hold the products with every non-zero
 * B[k,j]. Matrix-2 elements ride the unicast path. Groups are packed into
 * "waves" of grid_dim^2 multiplier slots; one wave executes per cycle.
 */
#ifndef FLEXNERFER_GEMM_MAPPER_H_
#define FLEXNERFER_GEMM_MAPPER_H_

#include <cstdint>
#include <vector>

#include "common/matrix.h"
#include "mac/mac_array.h"
#include "noc/distribution_network.h"

namespace flexnerfer {

/** One wave of operand pairs mapped onto the multiplier grid. */
struct MappedWave {
    /** Operand pairs in slot order (row-major over the grid). */
    std::vector<MappedOperand> slots;
    /** Matrix-1 multicast groups with grid-coordinate destinations. */
    std::vector<MulticastGroup> groups;
    /** Distinct matrix-2 elements delivered in this wave. */
    int distinct_b = 0;
};

/** Builds dense-mapped waves for one tile pair. */
class DenseMapper
{
  public:
    /** @param grid_dim effective multiplier grid side (tile side) */
    explicit DenseMapper(int grid_dim);

    /**
     * Maps C_tile += A_tile * B_tile. Output indices are globalized with
     * @p row_offset / @p col_offset against a C matrix of @p c_cols columns.
     *
     * @param skip_zeros true: only non-zero products are mapped (sparsity
     *        support); false: every product including zeros occupies a slot
     *        (dense baseline behaviour — one wave per k slice)
     */
    std::vector<MappedWave>
    MapTilePair(const MatrixI& a_tile, const MatrixI& b_tile,
                std::int64_t row_offset, std::int64_t k_offset,
                std::int64_t col_offset, std::int64_t c_cols,
                bool skip_zeros = true) const;

    int grid_dim() const { return grid_dim_; }
    int SlotsPerWave() const { return grid_dim_ * grid_dim_; }

  private:
    int grid_dim_;
};

}  // namespace flexnerfer

#endif  // FLEXNERFER_GEMM_MAPPER_H_
