/**
 * @file
 * Tile extraction helpers for walking GEMM operands in MAC-array-native
 * square tiles (zero-padded at the edges).
 */
#ifndef FLEXNERFER_GEMM_TILING_H_
#define FLEXNERFER_GEMM_TILING_H_

#include <vector>

#include "common/matrix.h"

namespace flexnerfer {

/** Number of tiles covering @p total elements at @p tile granularity. */
int TileCount(int total, int tile);

/**
 * Extracts the tile of size @p rows x @p cols whose top-left corner is at
 * (@p r0, @p c0); out-of-range elements are zero (padding).
 */
MatrixI ExtractTile(const MatrixI& m, int r0, int c0, int rows, int cols);

/** Non-zero count of each column of @p tile. */
std::vector<int> ColumnNnz(const MatrixI& tile);

/** Non-zero count of each row of @p tile. */
std::vector<int> RowNnz(const MatrixI& tile);

}  // namespace flexnerfer

#endif  // FLEXNERFER_GEMM_TILING_H_
