#include "gemm/mapper.h"

#include <set>

#include "common/logging.h"

namespace flexnerfer {

DenseMapper::DenseMapper(int grid_dim)
    : grid_dim_(grid_dim)
{
    FLEX_CHECK_MSG(grid_dim >= 1, "grid dim must be positive");
}

std::vector<MappedWave>
DenseMapper::MapTilePair(const MatrixI& a_tile, const MatrixI& b_tile,
                         std::int64_t row_offset, std::int64_t k_offset,
                         std::int64_t col_offset, std::int64_t c_cols,
                         bool skip_zeros) const
{
    FLEX_CHECK_MSG(a_tile.cols() == b_tile.rows(),
                   "tile shape mismatch: " << a_tile.cols() << " vs "
                                           << b_tile.rows());
    const int slots_per_wave = SlotsPerWave();

    std::vector<MappedWave> waves;
    waves.emplace_back();
    int slot = 0;
    std::set<std::int64_t> b_seen;  // distinct B elements in current wave

    auto begin_new_wave = [&]() {
        waves.emplace_back();
        slot = 0;
        b_seen.clear();
    };

    // Walk groups: one group per non-zero A[i,k], destinations are the
    // products with every (non-zero) B[k,j].
    for (int k = 0; k < a_tile.cols(); ++k) {
        for (int i = 0; i < a_tile.rows(); ++i) {
            const std::int32_t a_val = a_tile.at(i, k);
            if (skip_zeros && a_val == 0) continue;

            MulticastGroup group;
            // Globally unique id of A element (row_offset + i, k_offset + k).
            group.elem_id = ((row_offset + i) << 24) | (k_offset + k);
            FLEX_CHECK_MSG(k_offset + k < (1 << 24),
                           "K dimension too large for element ids");
            bool group_open = false;

            for (int j = 0; j < b_tile.cols(); ++j) {
                const std::int32_t b_val = b_tile.at(k, j);
                if (skip_zeros && b_val == 0) continue;

                if (slot == slots_per_wave) {
                    // Flush the (possibly partial) group into the full wave.
                    if (group_open) {
                        waves.back().groups.push_back(group);
                        group.dests.clear();
                        group_open = false;
                    }
                    begin_new_wave();
                }
                const int slot_row = slot / grid_dim_;
                const int slot_col = slot % grid_dim_;
                const std::int64_t out_index =
                    (row_offset + i) * c_cols + (col_offset + j);
                FLEX_CHECK_MSG(out_index <= 0x7FFFFFFF,
                               "output matrix too large for 32-bit indices");
                waves.back().slots.push_back(
                    {a_val, b_val, static_cast<std::int32_t>(out_index)});
                group.dests.emplace_back(slot_row, slot_col);
                group_open = true;

                const std::int64_t b_id =
                    static_cast<std::int64_t>(k) * b_tile.cols() + j;
                if (b_seen.insert(b_id).second) {
                    ++waves.back().distinct_b;
                }
                ++slot;
            }
            if (group_open) {
                waves.back().groups.push_back(group);
            }
        }
        if (!skip_zeros) {
            // Dense baseline: each k slice occupies exactly one wave, idle
            // slots included, matching a classic inner-product systolic pass.
            if (slot != 0) begin_new_wave();
        }
    }

    if (waves.back().slots.empty()) {
        waves.pop_back();
    }
    return waves;
}

}  // namespace flexnerfer
