#!/usr/bin/env bash
# Docs consistency check (run by the CI docs-check job).
#
# Fails when:
#  - docs/PAPER_MAP.md names a bench target (2nd table column) that
#    CMake would not define — targets are globbed from bench/*.cpp and
#    examples/*.cpp, so a target exists iff its source file does;
#  - any backtick-quoted repo path (src/, tests/, bench/, examples/,
#    tools/, docs/) referenced in docs/*.md does not exist;
#  - any docs/*.md file is not linked from README.md (orphan docs rot
#    unseen — every guide must be reachable from the front page).
set -u
cd "$(dirname "$0")/.."
fail=0

# 0. The core docs must exist (and be linked — see check 3): a deleted
#    file must fail loudly, not skip its other checks.
for doc in docs/ARCHITECTURE.md docs/PAPER_MAP.md docs/SERVING_GUIDE.md; do
    if [ ! -f "${doc}" ]; then
        echo "${doc} is missing" >&2
        fail=1
    fi
done
if [ "${fail}" -ne 0 ]; then
    echo "docs check FAILED" >&2
    exit 1
fi

# 1. Bench targets named in PAPER_MAP's "Bench target" column.
while IFS= read -r target; do
    [ -z "${target}" ] && continue
    if [ ! -f "bench/${target}.cpp" ] &&
       [ ! -f "examples/${target}.cpp" ]; then
        echo "docs/PAPER_MAP.md: no bench/ or examples/ source defines" \
             "target '${target}'" >&2
        fail=1
    fi
done < <(awk -F'|' '/^\|/ { print $3 }' docs/PAPER_MAP.md |
         grep -o '`[A-Za-z0-9_]*`' | tr -d '`' | sort -u)

# 2. Backtick-quoted repo paths in every docs file. An extensionless
#    bench/ or examples/ reference names a build target: it resolves
#    if its .cpp source exists.
while IFS= read -r path; do
    [ -z "${path}" ] && continue
    p="${path%/}"
    if [ ! -e "${p}" ] && [ ! -f "${p}.cpp" ]; then
        echo "docs: referenced path '${path}' does not exist" >&2
        fail=1
    fi
done < <(grep -hoE \
         '`(src|tests|bench|examples|tools|docs)/[A-Za-z0-9_./-]*`' \
         docs/*.md | tr -d '`' | sort -u)

# 3. Every docs file must be reachable from the README — not just the
#    core two: a guide nobody can find from the front page is dead.
for doc in docs/*.md; do
    if ! grep -q "${doc}" README.md; then
        echo "README.md does not link ${doc}" >&2
        fail=1
    fi
done

# 4. The observability surface must stay documented: ARCHITECTURE.md
#    owns the span taxonomy / determinism story, SERVING_GUIDE.md the
#    bench flags. A rename or deletion of either section would leave
#    the tracing flags undiscoverable.
if ! grep -q '^## Observability' docs/ARCHITECTURE.md; then
    echo "docs/ARCHITECTURE.md lost its '## Observability' section" >&2
    fail=1
fi
if ! grep -q -- '--trace-out' docs/SERVING_GUIDE.md; then
    echo "docs/SERVING_GUIDE.md no longer documents --trace-out" >&2
    fail=1
fi

# 6. The cross-host cluster surface likewise: ARCHITECTURE.md owns the
#    transport/replication/kill-replay design and its determinism
#    contract, SERVING_GUIDE.md the failure-drill runbook. Losing
#    either section would leave the chaos drills undiscoverable.
if ! grep -q '^## Cross-host cluster' docs/ARCHITECTURE.md; then
    echo "docs/ARCHITECTURE.md lost its '## Cross-host cluster'" \
         "section" >&2
    fail=1
fi
if ! grep -q 'serving_cluster' docs/SERVING_GUIDE.md; then
    echo "docs/SERVING_GUIDE.md no longer documents the serving_cluster" \
         "drills" >&2
    fail=1
fi
if ! grep -qi 'failure drill' docs/SERVING_GUIDE.md; then
    echo "docs/SERVING_GUIDE.md lost its failure-drill runbook" >&2
    fail=1
fi

# 5. Every tests/*.cpp suite must be registered with ctest. CMake
#    registers suites by globbing tests/*_test.cpp, so a source that
#    does not match the glob silently never runs — the exact failure
#    this check exists to catch. Headers (shared matchers) are exempt.
if ! grep -q 'tests/\*_test\.cpp' CMakeLists.txt; then
    echo "CMakeLists.txt no longer globs tests/*_test.cpp - update" \
         "tools/check_docs.sh's test-registration check to match the" \
         "new registration scheme" >&2
    fail=1
fi
for test_src in tests/*.cpp; do
    case "${test_src}" in
        tests/*_test.cpp) ;;  # matched by the ctest glob
        *)
            echo "${test_src} does not match the tests/*_test.cpp glob" \
                 "CMakeLists.txt registers with ctest - rename it" \
                 "*_test.cpp (or make it a header if it is a helper)" >&2
            fail=1
            ;;
    esac
done

if [ "${fail}" -ne 0 ]; then
    echo "docs check FAILED" >&2
    exit 1
fi
echo "docs check OK"
