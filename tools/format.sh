#!/usr/bin/env bash
# One-shot clang-format normalization / check for the whole tree, using
# the pinned CI version (see CLANG_FORMAT_VERSION in ci.yml). The blocking
# format job runs `tools/format.sh --check`; run the script with no
# arguments to rewrite files in place.
#
# Usage:
#   tools/format.sh            # normalize every tracked .cpp/.h in place
#   tools/format.sh --check    # fail (non-zero) if anything is unformatted
#
# Override the binary with CLANG_FORMAT=... (defaults to clang-format-18,
# falling back to plain clang-format if the pinned name is absent).
set -euo pipefail

cd "$(dirname "$0")/.."

CLANG_FORMAT="${CLANG_FORMAT:-clang-format-18}"
if ! command -v "${CLANG_FORMAT}" > /dev/null 2>&1; then
    CLANG_FORMAT=clang-format
fi
if ! command -v "${CLANG_FORMAT}" > /dev/null 2>&1; then
    echo "error: no clang-format binary found (tried pinned and plain)" >&2
    exit 2
fi

"${CLANG_FORMAT}" --version >&2

mapfile -t files < <(git ls-files '*.cpp' '*.h')
if [[ "${1:-}" == "--check" ]]; then
    "${CLANG_FORMAT}" --dry-run --Werror "${files[@]}"
else
    "${CLANG_FORMAT}" -i "${files[@]}"
    git diff --stat
fi
