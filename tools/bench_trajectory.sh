#!/usr/bin/env bash
# Bench-trajectory runner (the CI bench-trajectory job).
#
# Runs the plan_cache, serving, serving_sharded, traffic_zoo,
# serving_cluster, and trajectory_replay smokes from an existing build
# directory, verifies
# their stdout is thread-count invariant (cmp of --threads 1 vs 4, the
# repo-wide determinism contract), and distils the headline metrics —
# model-time QPS, p50/p99 latency, shed/spill rates, per-tier
# traffic-zoo verdict tables, plan-cache hit accounting, the
# plan_cache wall-clock replay speedups, and the cross-host drill
# verdicts (flash-crowd shed with vs without replication, kill-replay
# recovery) — into one BENCH_ci.json. A traced serving pair
# additionally asserts the observability contract (the virtual Chrome
# trace projection is byte-identical across thread counts and valid
# JSON) and folds the trace census + per-stage attribution in.
# CI uploads the file as an artifact on every push, so the numbers
# form a trajectory over commits instead of scrolling away in job
# logs.
#
# Usage: tools/bench_trajectory.sh <build-dir> [output.json]
set -eu

build_dir="${1:?usage: bench_trajectory.sh <build-dir> [output.json]}"
out_json="${2:-BENCH_ci.json}"
workdir="$(mktemp -d)"
trap 'rm -rf "${workdir}"' EXIT

requests_serving=400
requests_sharded=300
requests_zoo=400
requests_cluster=300
frames_trajectory=150

run_pair() {
    # run_pair <name> <binary> <args...>: runs at --threads 1 and 4,
    # cmp-checks stdout invariance, leaves ${workdir}/<name>.out.
    local name="$1" binary="$2"
    shift 2
    "${build_dir}/${binary}" "$@" --threads 1 \
        > "${workdir}/${name}.t1.out" 2> "${workdir}/${name}.t1.err"
    "${build_dir}/${binary}" "$@" --threads 4 \
        > "${workdir}/${name}.out" 2> "${workdir}/${name}.err"
    if ! cmp -s "${workdir}/${name}.t1.out" "${workdir}/${name}.out"; then
        echo "${name}: stdout differs between --threads 1 and 4" >&2
        diff "${workdir}/${name}.t1.out" "${workdir}/${name}.out" >&2 || true
        exit 1
    fi
    echo "${name}: stdout thread-invariant (1 vs 4)"
}

run_pair plan_cache plan_cache --rounds 64
run_pair serving serving --requests "${requests_serving}"
run_pair serving_batched serving --requests "${requests_serving}" \
    --load 2.5 --batch-window-ms 200000
run_pair serving_sharded serving_sharded --requests "${requests_sharded}"
run_pair traffic_zoo traffic_zoo --requests "${requests_zoo}"
run_pair serving_cluster serving_cluster --requests "${requests_cluster}"
run_pair trajectory_replay trajectory_replay --frames "${frames_trajectory}"

# --- serving (traced): the observability path. The "[trace]" census
# and "[trace-stage]" attribution lines ride the stdout cmp; the
# exported virtual trace projection must itself be byte-identical
# across thread counts, and parse as JSON. -----------------------------
"${build_dir}/serving" --requests "${requests_serving}" --threads 1 \
    --trace-out "${workdir}/trace.t1.json" \
    > "${workdir}/serving_traced.t1.out" 2> /dev/null
"${build_dir}/serving" --requests "${requests_serving}" --threads 4 \
    --trace-out "${workdir}/trace.json" \
    > "${workdir}/serving_traced.out" 2> /dev/null
if ! cmp -s "${workdir}/serving_traced.t1.out" \
        "${workdir}/serving_traced.out"; then
    echo "serving_traced: stdout differs between --threads 1 and 4" >&2
    exit 1
fi
if ! cmp -s "${workdir}/trace.t1.json" "${workdir}/trace.json"; then
    echo "serving_traced: virtual trace projection differs between" \
         "--threads 1 and 4" >&2
    exit 1
fi
if command -v python3 > /dev/null 2>&1; then
    python3 -m json.tool "${workdir}/trace.json" > /dev/null
fi
echo "serving_traced: stdout and virtual trace thread-invariant (1 vs 4)"

# --- serving: summary-table scalars ("metric ...  value" rows). -------
sv="${workdir}/serving.out"
sv_metric() { grep "^$1" "${sv}" | head -1 | awk '{print $NF}'; }
sv_qps="$(sv_metric 'sustained QPS')"
sv_p50="$(sv_metric 'p50 latency')"
sv_p99="$(sv_metric 'p99 latency')"
sv_shed_rate="$(sv_metric 'shed rate')"
sv_util="$(sv_metric 'device utilization')"
sv_accepted="$(grep '^accepted / completed' "${sv}" | awk '{print $NF}')"
sv_plan_misses="$(sv_metric 'plan compiles')"
sv_evictions="$(sv_metric 'plan evictions')"
# "prepared frame hits   <hits> of <accepted> accepted"
sv_frame_hits="$(grep '^prepared frame hits' "${sv}" | awk '{print $4}')"
sv_frame_hit_rate="$(awk -v h="${sv_frame_hits}" -v a="${sv_accepted}" \
    'BEGIN { printf (a > 0 ? "%.6f" : "0"), (a > 0 ? h / a : 0) }')"

# --- serving (batched): the fused-batching path at 2.5x load — the
# same summary-table scalars plus the batching counters. ---------------
sb="${workdir}/serving_batched.out"
sb_metric() { grep "^$1" "${sb}" | head -1 | awk '{print $NF}'; }
sb_qps="$(sb_metric 'sustained QPS')"
sb_p50="$(sb_metric 'p50 latency')"
sb_p99="$(sb_metric 'p99 latency')"
sb_shed_rate="$(sb_metric 'shed rate')"
sb_accepted="$(grep '^accepted / completed' "${sb}" | awk '{print $NF}')"
sb_batches="$(sb_metric 'batches dispatched')"
sb_fused="$(sb_metric 'fused batches')"
sb_batched_requests="$(sb_metric 'requests in fused batches')"
sb_occupancy="$(sb_metric 'batch occupancy')"
sb_max_elements="$(sb_metric 'max batch elements')"

# --- plan_cache: wall-clock replay trajectory (stderr; machine-load
# dependent by nature — recorded for the trend, not cmp-checked). ------
pc="${workdir}/plan_cache.err"
pc_cold_us="$(grep 'cold:' "${pc}" | sed 's/.*(//' | awk '{print $1}')"
pc_keyed_us="$(grep 'cached (keyed)' "${pc}" | sed 's/.*(//' | awk '{print $1}')"
pc_prepared_us="$(grep 'cached (prepared)' "${pc}" | sed 's/.*(//' \
    | awk '{print $1}')"
pc_speedup="$(grep 'speedup:' "${pc}" | awk '{print $NF}' | tr -d 'x')"

# --- serving_sharded: one row per shard count from the scaling
# summary table (Shards Accepted Shed Rejected Spilled Spill% Shed%
# QPS p50 p90 p99 Util). -----------------------------------------------
sh="${workdir}/serving_sharded.out"
shard_rows="$(awk '/== Scaling summary/,0' "${sh}" \
    | awk 'NF >= 12 && $1 ~ /^[0-9]+$/ {
        printf "    {\"shards\": %s, \"accepted\": %s, " \
               "\"spill_rate_pct\": %s, \"shed_rate_pct\": %s, " \
               "\"qps_model\": %s, \"p50_ms\": %s, \"p99_ms\": %s, " \
               "\"utilization_pct\": %s},\n",
               $1, $2, $6, $7, $8, $9, $11, $12 }')"
shard_rows="${shard_rows%,*}"  # drop the trailing comma + newline

# --- traffic_zoo: one row per (scenario, policy, tier) from the
# machine-readable "[zoo] key=value ..." lines — the per-tier WFQ-vs-
# FIFO verdict and latency trajectory. ---------------------------------
zoo_rows="$(grep '^\[zoo\]' "${workdir}/traffic_zoo.out" \
    | awk '{
        printf "    {"
        for (i = 2; i <= NF; ++i) {
            split($i, kv, "=")
            quoted = (kv[1] == "scenario" || kv[1] == "policy" ||
                      kv[1] == "tier")
            printf "%s\"%s\": %s%s%s", (i > 2 ? ", " : ""), kv[1],
                   (quoted ? "\"" : ""), kv[2], (quoted ? "\"" : "")
        }
        printf "},\n" }')"
zoo_rows="${zoo_rows%,*}"  # drop the trailing comma + newline

# --- serving (traced): the "[trace] k=v ..." census and one row per
# "[trace-stage] ..." line — span counts and the trace-derived per-
# stage runtime attribution (the paper's Fig. 3 counterpart). ----------
tr="${workdir}/serving_traced.out"
tr_field() {
    grep '^\[trace\]' "${tr}" | head -1 | tr ' ' '\n' \
        | grep "^$1=" | cut -d= -f2
}
tr_spans="$(tr_field spans)"
tr_instants="$(tr_field instants)"
tr_counters="$(tr_field counters)"
tr_traces="$(tr_field traces)"
trace_stage_rows="$(grep '^\[trace-stage\]' "${tr}" \
    | awk '{
        printf "      {"
        for (i = 2; i <= NF; ++i) {
            split($i, kv, "=")
            quoted = (kv[1] == "stage")
            printf "%s\"%s\": %s%s%s", (i > 2 ? ", " : ""), kv[1],
                   (quoted ? "\"" : ""), kv[2], (quoted ? "\"" : "")
        }
        printf "},\n" }')"
trace_stage_rows="${trace_stage_rows%,*}"  # drop trailing comma

# --- serving_cluster: one row per "[cluster] ..." drill line — the
# wire-transparency parity verdict, the flash-crowd shed rate with and
# without hot-scene replication (and the shed cut it buys), and the
# kill-mid-stream replay/recovery drill. -------------------------------
cluster_rows="$(grep '^\[cluster\]' "${workdir}/serving_cluster.out" \
    | awk '{
        printf "    {"
        for (i = 2; i <= NF; ++i) {
            split($i, kv, "=")
            quoted = (kv[1] == "scenario" || kv[1] == "replication" ||
                      kv[1] == "conservation")
            printf "%s\"%s\": %s%s%s", (i > 2 ? ", " : ""), kv[1],
                   (quoted ? "\"" : ""), kv[2], (quoted ? "\"" : "")
        }
        printf "},\n" }')"
cluster_rows="${cluster_rows%,*}"  # drop the trailing comma + newline

# --- trajectory_replay: one row per "[trajectory] ..." line — the
# temporal-coherence payoff curve (p50/p99 and savings per pan speed),
# the teleport coherence-break drill, and the full-recompute baseline
# the curve must bend away from. ---------------------------------------
trajectory_rows="$(grep '^\[trajectory\]' "${workdir}/trajectory_replay.out" \
    | awk '{
        printf "    {"
        for (i = 2; i <= NF; ++i) {
            split($i, kv, "=")
            quoted = (kv[1] == "kind")
            printf "%s\"%s\": %s%s%s", (i > 2 ? ", " : ""), kv[1],
                   (quoted ? "\"" : ""), kv[2], (quoted ? "\"" : "")
        }
        printf "},\n" }')"
trajectory_rows="${trajectory_rows%,*}"  # drop the trailing comma

commit="${GITHUB_SHA:-$(git -C "$(dirname "$0")/.." rev-parse HEAD \
    2>/dev/null || echo unknown)}"

cat > "${out_json}" << EOF
{
  "schema": "flexnerfer-bench-trajectory-v1",
  "commit": "${commit}",
  "generated_utc": "$(date -u +%Y-%m-%dT%H:%M:%SZ)",
  "serving": {
    "requests": ${requests_serving},
    "qps_model": ${sv_qps},
    "p50_ms": ${sv_p50},
    "p99_ms": ${sv_p99},
    "shed_rate_pct": ${sv_shed_rate},
    "utilization_pct": ${sv_util},
    "accepted": ${sv_accepted},
    "cache": {
      "plan_misses": ${sv_plan_misses},
      "evictions": ${sv_evictions},
      "frame_hits": ${sv_frame_hits},
      "frame_hit_rate": ${sv_frame_hit_rate}
    }
  },
  "serving_batched": {
    "requests": ${requests_serving},
    "load": 2.5,
    "batch_window_ms": 200000,
    "qps_model": ${sb_qps},
    "p50_ms": ${sb_p50},
    "p99_ms": ${sb_p99},
    "shed_rate_pct": ${sb_shed_rate},
    "accepted": ${sb_accepted},
    "batches_dispatched": ${sb_batches},
    "fused_batches": ${sb_fused},
    "batched_requests": ${sb_batched_requests},
    "batch_occupancy": ${sb_occupancy},
    "max_batch_elements": ${sb_max_elements}
  },
  "plan_cache_wall_clock": {
    "cold_us_per_frame": ${pc_cold_us},
    "keyed_us_per_frame": ${pc_keyed_us},
    "prepared_us_per_frame": ${pc_prepared_us},
    "prepared_speedup_x": ${pc_speedup}
  },
  "serving_traced": {
    "requests": ${requests_serving},
    "spans": ${tr_spans},
    "instants": ${tr_instants},
    "counters": ${tr_counters},
    "traces": ${tr_traces},
    "stages": [
${trace_stage_rows}
    ]
  },
  "serving_sharded": [
${shard_rows}
  ],
  "traffic_zoo": [
${zoo_rows}
  ],
  "serving_cluster": [
${cluster_rows}
  ],
  "trajectory_replay": [
${trajectory_rows}
  ]
}
EOF

# The artifact must be machine-parseable forever: validate if a JSON
# tool exists (python3 is present on the CI runners).
if command -v python3 > /dev/null 2>&1; then
    python3 -m json.tool "${out_json}" > /dev/null
fi
echo "wrote ${out_json}"
