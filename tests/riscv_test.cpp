/**
 * @file
 * Tests for the RV32IM controller core: instruction semantics, memory and
 * MMIO behaviour, and the accelerator command-queue programs.
 */
#include <gtest/gtest.h>

#include "riscv/controller.h"
#include "riscv/cpu.h"
#include "riscv/encoder.h"

namespace flexnerfer {
namespace {

using namespace rv;  // NOLINT: instruction mnemonics in tests

TEST(Rv32Cpu, AddiAndAdd)
{
    Rv32Cpu cpu;
    cpu.LoadProgram({Addi(1, 0, 5), Addi(2, 0, 7), Add(3, 1, 2), Ebreak()});
    cpu.Run();
    EXPECT_EQ(cpu.reg(3), 12u);
    EXPECT_TRUE(cpu.halted());
}

TEST(Rv32Cpu, X0IsHardwiredZero)
{
    Rv32Cpu cpu;
    cpu.LoadProgram({Addi(0, 0, 42), Add(1, 0, 0), Ebreak()});
    cpu.Run();
    EXPECT_EQ(cpu.reg(0), 0u);
    EXPECT_EQ(cpu.reg(1), 0u);
}

TEST(Rv32Cpu, NegativeImmediatesSignExtend)
{
    Rv32Cpu cpu;
    cpu.LoadProgram({Addi(1, 0, -1), Addi(2, 1, -5), Ebreak()});
    cpu.Run();
    EXPECT_EQ(cpu.reg(1), 0xFFFFFFFFu);
    EXPECT_EQ(static_cast<std::int32_t>(cpu.reg(2)), -6);
}

TEST(Rv32Cpu, SubAndLogicOps)
{
    Rv32Cpu cpu;
    cpu.LoadProgram({Addi(1, 0, 12), Addi(2, 0, 10), Sub(3, 1, 2),
                     Andi(4, 1, 0xC), Ori(5, 2, 0x1), Ebreak()});
    cpu.Run();
    EXPECT_EQ(cpu.reg(3), 2u);
    EXPECT_EQ(cpu.reg(4), 12u);
    EXPECT_EQ(cpu.reg(5), 11u);
}

TEST(Rv32Cpu, Shifts)
{
    Rv32Cpu cpu;
    cpu.LoadProgram({Addi(1, 0, 1), Slli(2, 1, 10), Srli(3, 2, 3),
                     Ebreak()});
    cpu.Run();
    EXPECT_EQ(cpu.reg(2), 1024u);
    EXPECT_EQ(cpu.reg(3), 128u);
}

TEST(Rv32Cpu, LoadStoreRoundTrip)
{
    Rv32Cpu cpu;
    cpu.LoadProgram({Addi(1, 0, 0x123), Addi(2, 0, 256), Sw(1, 2, 0),
                     Lw(3, 2, 0), Ebreak()});
    cpu.Run();
    EXPECT_EQ(cpu.reg(3), 0x123u);
    EXPECT_EQ(cpu.LoadWord(256), 0x123u);
}

TEST(Rv32Cpu, BranchLoopSumsOneToTen)
{
    // x1 = counter (10..1), x2 = accumulator.
    Rv32Cpu cpu;
    cpu.LoadProgram({
        Addi(1, 0, 10),
        Addi(2, 0, 0),
        // loop:
        Add(2, 2, 1),       // acc += counter
        Addi(1, 1, -1),     // counter--
        Bne(1, 0, -8),      // while (counter != 0)
        Ebreak(),
    });
    cpu.Run();
    EXPECT_EQ(cpu.reg(2), 55u);
}

TEST(Rv32Cpu, JalLinksAndJumps)
{
    Rv32Cpu cpu;
    cpu.LoadProgram({
        Jal(1, 12),         // jump over the next two instructions
        Addi(2, 0, 99),     // skipped
        Addi(2, 0, 98),     // skipped
        Addi(3, 0, 7),
        Ebreak(),
    });
    cpu.Run();
    EXPECT_EQ(cpu.reg(1), 4u);  // return address
    EXPECT_EQ(cpu.reg(2), 0u);
    EXPECT_EQ(cpu.reg(3), 7u);
}

TEST(Rv32Cpu, MExtension)
{
    Rv32Cpu cpu;
    cpu.LoadProgram({Addi(1, 0, 1000), Addi(2, 0, 729), Mul(3, 1, 2),
                     Divu(4, 3, 2), Remu(5, 1, 2), Ebreak()});
    cpu.Run();
    EXPECT_EQ(cpu.reg(3), 729000u);
    EXPECT_EQ(cpu.reg(4), 1000u);
    EXPECT_EQ(cpu.reg(5), 271u);
}

TEST(Rv32Cpu, DivisionByZeroFollowsSpec)
{
    Rv32Cpu cpu;
    cpu.LoadProgram({Addi(1, 0, 5), Divu(2, 1, 0), Remu(3, 1, 0),
                     Ebreak()});
    cpu.Run();
    EXPECT_EQ(cpu.reg(2), 0xFFFFFFFFu);
    EXPECT_EQ(cpu.reg(3), 5u);
}

TEST(Rv32Cpu, MmioReadWrite)
{
    Rv32Cpu cpu;
    std::uint32_t last_write = 0;
    cpu.SetMmioHandler([&](std::uint32_t offset, std::uint32_t value,
                           bool is_write, std::uint32_t* read_value) {
        if (is_write) {
            last_write = value + offset;
        } else {
            *read_value = 0xABCD;
        }
    });
    cpu.LoadProgram({
        Lui(5, 0x40000),    // MMIO base
        Addi(1, 0, 77),
        Sw(1, 5, 8),
        Lw(2, 5, 0),
        Ebreak(),
    });
    cpu.Run();
    EXPECT_EQ(last_write, 85u);
    EXPECT_EQ(cpu.reg(2), 0xABCDu);
}

TEST(Controller, ProgramIssuesCommandQueue)
{
    AcceleratorController controller;
    const auto program = BuildGemmControlProgram(/*precision=*/8,
                                                 /*tiles=*/3, /*waves=*/16);
    const std::int64_t retired = controller.RunProgram(program);
    EXPECT_GT(retired, 10);

    const auto& cmds = controller.commands();
    ASSERT_GE(cmds.size(), 8u);
    EXPECT_EQ(cmds.front().op, ControlOp::kSetPrecision);
    EXPECT_EQ(cmds.front().operand, 8u);
    EXPECT_EQ(cmds.back().op, ControlOp::kBarrier);

    int load_tiles = 0, run_gemms = 0;
    for (const ControlCommand& c : cmds) {
        if (c.op == ControlOp::kLoadTile) ++load_tiles;
        if (c.op == ControlOp::kRunGemm) {
            ++run_gemms;
            EXPECT_EQ(c.operand, 16u);
        }
    }
    EXPECT_EQ(load_tiles, 3);
    EXPECT_EQ(run_gemms, 3);
}

TEST(Controller, ZeroTilesSkipsLoop)
{
    AcceleratorController controller;
    controller.RunProgram(BuildGemmControlProgram(16, 0, 4));
    const auto& cmds = controller.commands();
    ASSERT_EQ(cmds.size(), 2u);  // set precision + barrier only
    EXPECT_EQ(cmds[0].op, ControlOp::kSetPrecision);
    EXPECT_EQ(cmds[1].op, ControlOp::kBarrier);
}

}  // namespace
}  // namespace flexnerfer
