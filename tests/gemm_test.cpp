/**
 * @file
 * Tests for the GEMM/GEMV engine: functional correctness of the detailed
 * (per-wave, NoC + datapath) and tiled paths against reference GEMM, cycle
 * model invariants, and consistency between the fidelity levels.
 */
#include <gtest/gtest.h>

#include <tuple>

#include "common/matrix.h"
#include "common/rng.h"
#include "gemm/engine.h"
#include "gemm/mapper.h"
#include "gemm/tiling.h"

namespace flexnerfer {
namespace {

GemmEngineConfig
SmallConfig(Precision p, bool detailed, bool sparsity = true)
{
    GemmEngineConfig config;
    config.precision = p;
    config.array_dim = 4;  // grid 4/8/16 depending on precision
    config.detailed = detailed;
    config.support_sparsity = sparsity;
    return config;
}

TEST(Tiling, TileCountCeil)
{
    EXPECT_EQ(TileCount(0, 4), 0);
    EXPECT_EQ(TileCount(1, 4), 1);
    EXPECT_EQ(TileCount(4, 4), 1);
    EXPECT_EQ(TileCount(5, 4), 2);
}

TEST(Tiling, ExtractTilePadsWithZeros)
{
    MatrixI m(3, 3, 7);
    const MatrixI t = ExtractTile(m, 2, 2, 4, 4);
    EXPECT_EQ(t.at(0, 0), 7);
    EXPECT_EQ(t.at(0, 1), 0);
    EXPECT_EQ(t.at(3, 3), 0);
}

TEST(Tiling, RowColumnNnz)
{
    MatrixI m(2, 3);
    m.at(0, 1) = 5;
    m.at(1, 1) = 2;
    m.at(1, 2) = -1;
    EXPECT_EQ(ColumnNnz(m), (std::vector<int>{0, 2, 1}));
    EXPECT_EQ(RowNnz(m), (std::vector<int>{1, 2}));
}

TEST(Mapper, DenseTileFillsOneWavePerKSlice)
{
    Rng rng(1);
    const MatrixI a = MakeSparseMatrix(4, 4, 0.0, Precision::kInt16, rng);
    const MatrixI b = MakeSparseMatrix(4, 4, 0.0, Precision::kInt16, rng);
    const DenseMapper mapper(4);
    const auto waves = mapper.MapTilePair(a, b, 0, 0, 0, 4, false);
    ASSERT_EQ(waves.size(), 4u);  // one wave per k slice
    for (const MappedWave& w : waves) {
        EXPECT_EQ(w.slots.size(), 16u);
        EXPECT_EQ(w.distinct_b, 4);  // one B row per k slice
    }
}

TEST(Mapper, SparseTilePacksDensely)
{
    Rng rng(2);
    const MatrixI a = MakeSparseMatrix(8, 8, 0.75, Precision::kInt16, rng);
    const MatrixI b = MakeSparseMatrix(8, 8, 0.75, Precision::kInt16, rng);
    const DenseMapper mapper(8);
    const auto waves = mapper.MapTilePair(a, b, 0, 0, 0, 8, true);

    std::size_t products = 0;
    for (const MappedWave& w : waves) {
        products += w.slots.size();
        for (const MappedOperand& s : w.slots) {
            EXPECT_NE(s.a, 0);
            EXPECT_NE(s.b, 0);
        }
    }
    // Every wave but the last must be completely full.
    for (std::size_t i = 0; i + 1 < waves.size(); ++i) {
        EXPECT_EQ(waves[i].slots.size(), 64u);
    }
    // Product count equals sum over k of nnzA(:,k) * nnzB(k,:).
    const auto a_cols = ColumnNnz(a);
    const auto b_rows = RowNnz(b);
    std::size_t expected = 0;
    for (int k = 0; k < 8; ++k) {
        expected += static_cast<std::size_t>(a_cols[k]) * b_rows[k];
    }
    EXPECT_EQ(products, expected);
}

TEST(Mapper, GroupDestinationsMatchSlots)
{
    Rng rng(3);
    const MatrixI a = MakeSparseMatrix(4, 4, 0.5, Precision::kInt16, rng);
    const MatrixI b = MakeSparseMatrix(4, 4, 0.5, Precision::kInt16, rng);
    const DenseMapper mapper(4);
    const auto waves = mapper.MapTilePair(a, b, 0, 0, 0, 4, true);
    for (const MappedWave& w : waves) {
        std::size_t group_dests = 0;
        for (const MulticastGroup& g : w.groups) group_dests += g.dests.size();
        EXPECT_EQ(group_dests, w.slots.size());
    }
}

/** Functional correctness across precision x sparsity x fidelity. */
class EngineCorrectness
    : public ::testing::TestWithParam<std::tuple<Precision, double, bool>>
{};

TEST_P(EngineCorrectness, MatchesReferenceGemm)
{
    const auto [precision, sparsity, detailed] = GetParam();
    Rng rng(100 + static_cast<int>(sparsity * 10));
    // Irregular (non-tile-multiple) shape to exercise padding.
    const int m = 10, k = 7, n = 9;
    const MatrixI a = MakeSparseMatrix(m, k, sparsity, precision, rng);
    const MatrixI b = MakeSparseMatrix(k, n, sparsity, precision, rng);

    const GemmEngine engine(SmallConfig(precision, detailed));
    const GemmResult result = engine.Run(a, b);
    EXPECT_EQ(result.output, ReferenceGemm(a, b));
    EXPECT_GE(result.cycles, 1.0);
    EXPECT_GE(result.latency_ms, 0.0);
    EXPECT_LE(result.utilization, 1.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EngineCorrectness,
    ::testing::Combine(::testing::Values(Precision::kInt4, Precision::kInt8,
                                         Precision::kInt16),
                       ::testing::Values(0.0, 0.3, 0.7, 0.95),
                       ::testing::Bool()));

TEST(Engine, DenseBaselineAlsoComputesCorrectly)
{
    Rng rng(4);
    const MatrixI a = MakeSparseMatrix(9, 6, 0.5, Precision::kInt16, rng);
    const MatrixI b = MakeSparseMatrix(6, 11, 0.5, Precision::kInt16, rng);
    for (bool detailed : {false, true}) {
        const GemmEngine engine(
            SmallConfig(Precision::kInt16, detailed, /*sparsity=*/false));
        EXPECT_EQ(engine.Run(a, b).output, ReferenceGemm(a, b));
    }
}

TEST(Engine, SparsitySupportReducesWaves)
{
    Rng rng(5);
    const MatrixI a = MakeSparseMatrix(16, 16, 0.8, Precision::kInt16, rng);
    const MatrixI b = MakeSparseMatrix(16, 16, 0.8, Precision::kInt16, rng);
    const GemmEngine sparse(SmallConfig(Precision::kInt16, false, true));
    const GemmEngine dense(SmallConfig(Precision::kInt16, false, false));
    const GemmResult rs = sparse.Run(a, b);
    const GemmResult rd = dense.Run(a, b);
    EXPECT_LT(rs.waves, rd.waves);
    EXPECT_GT(rs.utilization, rd.utilization);
    EXPECT_LT(rs.energy.mac, rd.energy.mac);
}

TEST(Engine, DenseWaveCountIsTilesTimesGrid)
{
    Rng rng(6);
    const MatrixI a = MakeSparseMatrix(8, 8, 0.3, Precision::kInt16, rng);
    const MatrixI b = MakeSparseMatrix(8, 8, 0.3, Precision::kInt16, rng);
    const GemmEngine dense(SmallConfig(Precision::kInt16, false, false));
    // 2x2x2 tile triples at grid 4: 8 triples x 4 waves each.
    EXPECT_DOUBLE_EQ(dense.Run(a, b).waves, 8 * 4.0);
}

TEST(Engine, DetailedAndTiledAgreeOnWorkCounts)
{
    Rng rng(7);
    const MatrixI a = MakeSparseMatrix(12, 8, 0.6, Precision::kInt16, rng);
    const MatrixI b = MakeSparseMatrix(8, 12, 0.6, Precision::kInt16, rng);
    const GemmEngine detailed(SmallConfig(Precision::kInt16, true));
    const GemmEngine tiled(SmallConfig(Precision::kInt16, false));
    const GemmResult rdet = detailed.Run(a, b);
    const GemmResult rtil = tiled.Run(a, b);
    EXPECT_DOUBLE_EQ(rdet.useful_macs, rtil.useful_macs);
    EXPECT_DOUBLE_EQ(rdet.waves, rtil.waves);
    EXPECT_DOUBLE_EQ(rdet.a_bytes_encoded, rtil.a_bytes_encoded);
    EXPECT_DOUBLE_EQ(rdet.b_bytes_encoded, rtil.b_bytes_encoded);
}

TEST(Engine, StatisticalPathTracksTiledPath)
{
    Rng rng(8);
    const double density = 0.4;
    const MatrixI a =
        MakeSparseMatrix(32, 32, 1.0 - density, Precision::kInt16, rng);
    const MatrixI b =
        MakeSparseMatrix(32, 32, 1.0 - density, Precision::kInt16, rng);

    GemmEngineConfig config = SmallConfig(Precision::kInt16, false);
    config.compute_output = false;
    const GemmEngine engine(config);
    const GemmResult tiled = engine.Run(a, b);
    const GemmResult statistical = engine.RunFromShape(
        {32, 32, 32, a.Density(), b.Density()});

    EXPECT_NEAR(statistical.useful_macs, tiled.useful_macs,
                0.15 * tiled.useful_macs);
    EXPECT_NEAR(statistical.waves, tiled.waves, 0.25 * tiled.waves);
    EXPECT_NEAR(statistical.energy.TotalPj(), tiled.energy.TotalPj(),
                0.3 * tiled.energy.TotalPj());
}

TEST(Engine, CodecShrinksDramTrafficOnSparseData)
{
    GemmEngineConfig with = SmallConfig(Precision::kInt16, false);
    with.compute_output = false;
    GemmEngineConfig without = with;
    without.use_flex_codec = false;

    const GemmShape shape{256, 256, 256, 0.1, 0.1};
    const GemmResult rc = GemmEngine(with).RunFromShape(shape);
    const GemmResult rn = GemmEngine(without).RunFromShape(shape);
    EXPECT_LT(rc.dram_bytes, 0.5 * rn.dram_bytes);
    EXPECT_NE(rc.a_format, SparsityFormat::kNone);
}

TEST(Engine, BenesStyleSpendsMoreNocHops)
{
    GemmEngineConfig tree = SmallConfig(Precision::kInt16, false);
    tree.compute_output = false;
    GemmEngineConfig benes = tree;
    benes.noc_style = NocStyle::kBenes;

    const GemmShape shape{64, 64, 64, 0.5, 0.5};
    const GemmResult rt = GemmEngine(tree).RunFromShape(shape);
    const GemmResult rb = GemmEngine(benes).RunFromShape(shape);
    EXPECT_GT(rb.noc.switch_hops, rt.noc.switch_hops);
}

TEST(Engine, LowerPrecisionIsFasterOnSameWork)
{
    GemmEngineConfig c16 = SmallConfig(Precision::kInt16, false);
    c16.compute_output = false;
    c16.array_dim = 64;
    GemmEngineConfig c8 = c16;
    c8.precision = Precision::kInt8;
    GemmEngineConfig c4 = c16;
    c4.precision = Precision::kInt4;

    const GemmShape shape{4096, 512, 512, 1.0, 1.0};
    const double t16 = GemmEngine(c16).RunFromShape(shape).latency_ms;
    const double t8 = GemmEngine(c8).RunFromShape(shape).latency_ms;
    const double t4 = GemmEngine(c4).RunFromShape(shape).latency_ms;
    EXPECT_LT(t8, t16);
    EXPECT_LT(t4, t8);
}

TEST(Engine, PruningReducesLatencyOnlyWithSparsitySupport)
{
    GemmEngineConfig sparse = SmallConfig(Precision::kInt16, false);
    sparse.compute_output = false;
    sparse.array_dim = 64;
    // Hidden-layer setting: activations stay in the on-chip buffers.
    sparse.stream_a_from_dram = false;
    sparse.write_c_to_dram = false;
    GemmEngineConfig dense = sparse;
    dense.support_sparsity = false;
    dense.use_flex_codec = false;

    const GemmShape dense_shape{4096, 512, 512, 1.0, 1.0, 0.0};
    const GemmShape pruned_shape{4096, 512, 512, 1.0, 1.0, 0.9};

    const double s_dense =
        GemmEngine(sparse).RunFromShape(dense_shape).latency_ms;
    const double s_pruned =
        GemmEngine(sparse).RunFromShape(pruned_shape).latency_ms;
    EXPECT_LT(s_pruned, 0.5 * s_dense);

    const double d_dense =
        GemmEngine(dense).RunFromShape(dense_shape).latency_ms;
    const double d_pruned =
        GemmEngine(dense).RunFromShape(pruned_shape).latency_ms;
    EXPECT_NEAR(d_pruned, d_dense, 0.05 * d_dense);
}

TEST(Engine, DisablingClbStallsHighPrecisionWaveIssue)
{
    // Section 4.1.3: without the bypass links the unit's 16-bit operand
    // load takes 4 cycles, so wave issue (and total cycles on a
    // compute-bound GEMM) slows ~4x; INT4 is unaffected because the bus
    // is provisioned for it.
    GemmEngineConfig with = SmallConfig(Precision::kInt16, false);
    with.compute_output = false;
    with.array_dim = 64;
    GemmEngineConfig without = with;
    without.use_clb = false;

    const GemmShape shape{4096, 512, 512, 1.0, 1.0, 0.0};
    const GemmResult rw = GemmEngine(with).RunFromShape(shape);
    const GemmResult ro = GemmEngine(without).RunFromShape(shape);
    EXPECT_NEAR(ro.compute_cycles, 4.0 * rw.compute_cycles,
                0.01 * ro.compute_cycles);
    EXPECT_GT(ro.cycles, 3.5 * rw.cycles);

    GemmEngineConfig int4_with = with;
    int4_with.precision = Precision::kInt4;
    GemmEngineConfig int4_without = int4_with;
    int4_without.use_clb = false;
    EXPECT_DOUBLE_EQ(
        GemmEngine(int4_with).RunFromShape(shape).compute_cycles,
        GemmEngine(int4_without).RunFromShape(shape).compute_cycles);
}

TEST(Engine, ZeroMatrixCostsAlmostNothingButStaysValid)
{
    const MatrixI a(8, 8);
    const MatrixI b(8, 8);
    const GemmEngine engine(SmallConfig(Precision::kInt16, true));
    const GemmResult r = engine.Run(a, b);
    EXPECT_EQ(r.output, Matrix<std::int64_t>(8, 8));
    EXPECT_DOUBLE_EQ(r.useful_macs, 0.0);
}

TEST(Engine, GemvShapeWorks)
{
    Rng rng(9);
    const MatrixI a = MakeSparseMatrix(1, 16, 0.4, Precision::kInt16, rng);
    const MatrixI b = MakeSparseMatrix(16, 16, 0.4, Precision::kInt16, rng);
    const GemmEngine engine(SmallConfig(Precision::kInt16, true));
    EXPECT_EQ(engine.Run(a, b).output, ReferenceGemm(a, b));
}

}  // namespace
}  // namespace flexnerfer
