/**
 * @file
 * Tests for the accelerator zoo: PPA tables against the paper's published
 * numbers, GPU model behaviour, dense-array utilization (Fig. 4), the
 * Table 3 effective-efficiency ordering, and the end-to-end FlexNeRFer /
 * NeuRex frame models.
 */
#include <gtest/gtest.h>

#include "accel/arrays.h"
#include "accel/dense_utilization.h"
#include "accel/flexnerfer.h"
#include "accel/gpu_model.h"
#include "accel/neurex.h"
#include "accel/ppa.h"
#include "obs/metrics.h"

namespace flexnerfer {
namespace {

TEST(Ppa, Table3PeakEfficiencies)
{
    // Table 3 peak TOPS/W: SIGMA 1.1; Bit Fusion 18.1/4.9/1.4;
    // bit-scalable SIGMA 5.7/3.0/0.8; FlexNeRFer 15.2/4.1/1.2.
    const ArraySpec& sigma = GetArraySpec(ArrayKind::kSigma);
    EXPECT_NEAR(sigma.PeakTopsPerW(Precision::kInt16), 1.1, 0.1);
    EXPECT_FALSE(sigma.SupportsPrecision(Precision::kInt4));

    const ArraySpec& bf = GetArraySpec(ArrayKind::kBitFusion);
    EXPECT_NEAR(bf.PeakTopsPerW(Precision::kInt4), 18.1, 0.3);
    EXPECT_NEAR(bf.PeakTopsPerW(Precision::kInt8), 4.9, 0.2);
    EXPECT_NEAR(bf.PeakTopsPerW(Precision::kInt16), 1.4, 0.1);

    const ArraySpec& bss = GetArraySpec(ArrayKind::kBitScalableSigma);
    EXPECT_NEAR(bss.PeakTopsPerW(Precision::kInt4), 5.7, 0.2);
    EXPECT_NEAR(bss.PeakTopsPerW(Precision::kInt8), 3.0, 0.1);
    EXPECT_NEAR(bss.PeakTopsPerW(Precision::kInt16), 0.8, 0.05);

    const ArraySpec& flex = GetArraySpec(ArrayKind::kFlexNeRFer);
    EXPECT_NEAR(flex.PeakTopsPerW(Precision::kInt4), 15.2, 0.3);
    EXPECT_NEAR(flex.PeakTopsPerW(Precision::kInt8), 4.1, 0.1);
    EXPECT_NEAR(flex.PeakTopsPerW(Precision::kInt16), 1.2, 0.05);
}

TEST(Ppa, Table3AreaOrdering)
{
    // FlexNeRFer: 1.4x larger than SIGMA, 10.3% smaller than Bit Fusion,
    // 1.4x smaller than bit-scalable SIGMA.
    const double flex = GetArraySpec(ArrayKind::kFlexNeRFer).area_mm2;
    EXPECT_NEAR(flex / GetArraySpec(ArrayKind::kSigma).area_mm2, 1.4, 0.05);
    EXPECT_NEAR(1.0 - flex / GetArraySpec(ArrayKind::kBitFusion).area_mm2,
                0.103, 0.01);
    EXPECT_NEAR(GetArraySpec(ArrayKind::kBitScalableSigma).area_mm2 / flex,
                1.4, 0.05);
}

TEST(Ppa, BreakdownsSumToTotals)
{
    for (ArrayKind kind : {ArrayKind::kSigma, ArrayKind::kBitFusion,
                           ArrayKind::kBitScalableSigma,
                           ArrayKind::kFlexNeRFer}) {
        const PpaBreakdown b = ArrayBreakdown(kind);
        EXPECT_NEAR(b.TotalAreaMm2(), GetArraySpec(kind).area_mm2, 0.1);
    }
    EXPECT_NEAR(FlexNeRFerBreakdown().TotalAreaMm2(),
                FlexNeRFerSpec().area_mm2, 0.1);
    EXPECT_NEAR(FlexNeRFerBreakdown().TotalPowerW(),
                FlexNeRFerSpec().power_w, 0.1);
    EXPECT_NEAR(NeuRexBreakdown().TotalAreaMm2(), NeuRexSpec().area_mm2,
                0.1);
}

TEST(Ppa, AcceleratorsMeetOnDeviceConstraints)
{
    // Fig. 16: both accelerators fit under 100 mm^2 / 10 W; the GPUs do not.
    EXPECT_LT(FlexNeRFerSpec().area_mm2, kAreaConstraintMm2);
    EXPECT_LT(FlexNeRFerPowerW(Precision::kInt4), kPowerConstraintW);
    EXPECT_LT(NeuRexSpec().area_mm2, kAreaConstraintMm2);
    EXPECT_GT(Rtx2080TiSpec().area_mm2, kAreaConstraintMm2);
    EXPECT_GT(Rtx2080TiSpec().power_w, kPowerConstraintW);
    EXPECT_GT(XavierNxSpec().power_w, kPowerConstraintW);
}

TEST(Ppa, FormatCodecOverheadIsSmall)
{
    // Section 6.3.1: 3.2% area, 3.4% power for the format codec.
    const PpaBreakdown b = FlexNeRFerBreakdown();
    double codec_area = 0.0, codec_power = 0.0;
    for (const auto& c : b.components) {
        if (c.name.find("format") != std::string::npos) {
            codec_area = c.area_mm2;
            codec_power = c.power_w;
        }
    }
    EXPECT_NEAR(codec_area / b.TotalAreaMm2(), 0.032, 0.004);
    EXPECT_NEAR(codec_power / b.TotalPowerW(), 0.034, 0.004);
}

TEST(GpuModel, Fig1LatenciesExceedFrameThresholds)
{
    // Fig. 1: all seven models miss the 16.8 ms VR threshold on the GPU.
    const GpuModel gpu;
    for (const std::string& name : AllModelNames()) {
        const FrameCost c = gpu.RunWorkload(BuildWorkload(name));
        EXPECT_GT(c.latency_ms, 16.8) << name;
    }
}

TEST(GpuModel, NerfOrdersOfMagnitudeSlowerThanNgp)
{
    const GpuModel gpu;
    const double nerf =
        gpu.RunWorkload(BuildWorkload("NeRF")).latency_ms;
    const double ngp =
        gpu.RunWorkload(BuildWorkload("Instant-NGP")).latency_ms;
    EXPECT_GT(nerf / ngp, 30.0);
}

TEST(GpuModel, GemmDominatesRuntime)
{
    // Fig. 3: GEMM/GEMV is the top contributor for every model.
    const GpuModel gpu;
    for (const std::string& name : AllModelNames()) {
        const FrameCost c = gpu.RunWorkload(BuildWorkload(name));
        EXPECT_GT(c.gemm_ms, c.encoding_ms) << name;
        EXPECT_GT(c.gemm_ms, c.other_ms) << name;
    }
}

TEST(GpuModel, ThinLayersRunLessEfficiently)
{
    const GpuModel gpu;
    EXPECT_GT(gpu.GemmEfficiency(256, 256), gpu.GemmEfficiency(32, 32));
    EXPECT_GT(gpu.GemmEfficiency(8, 8), 0.0);
    EXPECT_LT(gpu.GemmEfficiency(8, 8), 0.1 * gpu.GemmEfficiency(256, 256));
}

TEST(GpuModel, XavierIsSlowerThanDesktop)
{
    const FrameCost desktop =
        GpuModel::Rtx2080Ti().RunWorkload(BuildWorkload("Instant-NGP"));
    const FrameCost edge =
        GpuModel::XavierNx().RunWorkload(BuildWorkload("Instant-NGP"));
    EXPECT_GT(edge.latency_ms, 2.0 * desktop.latency_ms);
}

TEST(DenseUtilization, Fig4Shapes)
{
    const auto& scenarios = Fig4Scenarios();
    ASSERT_EQ(scenarios.size(), 4u);

    // (a) early CNN: both commercial engines underfill.
    EXPECT_NEAR(NvdlaUtilization(scenarios[0]), 0.375, 0.01);
    EXPECT_LT(TpuUtilization(scenarios[0]), 0.8);
    // (b) late CNN: NVDLA reaches 100%, the TPU stays lower.
    EXPECT_NEAR(NvdlaUtilization(scenarios[1]), 1.0, 1e-9);
    EXPECT_LT(TpuUtilization(scenarios[1]), NvdlaUtilization(scenarios[1]));
    // (c) irregular dense GEMM: TPU high, NVDLA collapses.
    EXPECT_GT(TpuUtilization(scenarios[2]), 0.6);
    EXPECT_NEAR(NvdlaUtilization(scenarios[2]), 1.0 / 16.0, 1e-9);
    // (d) sparsity drags the TPU down further; NVDLA stays collapsed.
    EXPECT_LT(TpuUtilization(scenarios[3]), TpuUtilization(scenarios[2]));
    EXPECT_NEAR(NvdlaUtilization(scenarios[3]), 1.0 / 16.0, 1e-9);

    // FlexNeRFer's dense mapping stays high everywhere.
    for (const MappingScenario& s : scenarios) {
        EXPECT_GT(FlexNeRFerUtilization(s), 0.6) << s.name;
        EXPECT_GE(FlexNeRFerUtilization(s), TpuUtilization(s)) << s.name;
    }
}

TEST(Arrays, EffectiveEfficiencyOrderingMatchesTable3)
{
    // Effective TOPS/W at INT16: FlexNeRFer > SIGMA > bit-scalable SIGMA
    // > Bit Fusion (1.2 / 1.0 / 0.7 / 0.2 in the paper).
    const double flex =
        MeasureEffectiveEfficiency(ArrayKind::kFlexNeRFer,
                                   Precision::kInt16).tops_per_w;
    const double sigma =
        MeasureEffectiveEfficiency(ArrayKind::kSigma,
                                   Precision::kInt16).tops_per_w;
    const double bss =
        MeasureEffectiveEfficiency(ArrayKind::kBitScalableSigma,
                                   Precision::kInt16).tops_per_w;
    const double bf =
        MeasureEffectiveEfficiency(ArrayKind::kBitFusion,
                                   Precision::kInt16).tops_per_w;
    EXPECT_GT(flex, sigma);
    EXPECT_GT(sigma, bss);
    EXPECT_GT(bss, bf);
    EXPECT_NEAR(flex, 1.2, 0.25);
    EXPECT_NEAR(bf, 0.2, 0.08);
}

TEST(Arrays, SparsityArraysIgnoreZerosBitFusionDoesNot)
{
    const auto flex = MeasureEffectiveEfficiency(ArrayKind::kFlexNeRFer,
                                                 Precision::kInt16);
    const auto bf = MeasureEffectiveEfficiency(ArrayKind::kBitFusion,
                                               Precision::kInt16);
    EXPECT_GT(flex.utilization, 0.9);
    EXPECT_LT(bf.utilization, 0.25);
}

TEST(FrameModels, FlexNeRFerBeatsNeuRexBeatsGpu)
{
    const GpuModel gpu;
    const NeuRexModel neurex;
    const FlexNeRFerModel flex;
    const auto g = RunAllModels(gpu);
    const auto n = RunAllModels(neurex);
    const auto f = RunAllModels(flex);

    const double neurex_speedup = GeoMeanSpeedup(g, n);
    const double flex_speedup = GeoMeanSpeedup(g, f);
    EXPECT_GT(neurex_speedup, 1.5);
    EXPECT_GT(flex_speedup, 2.0 * neurex_speedup);
    EXPECT_GT(GeoMeanEnergyGain(g, f), GeoMeanEnergyGain(g, n));
}

TEST(FrameModels, LowerPrecisionRaisesSpeedup)
{
    const GpuModel gpu;
    const auto g = RunAllModels(gpu);
    double previous = 0.0;
    for (Precision p :
         {Precision::kInt16, Precision::kInt8, Precision::kInt4}) {
        FlexNeRFerModel::Config config;
        config.precision = p;
        const double speedup =
            GeoMeanSpeedup(g, RunAllModels(FlexNeRFerModel(config)));
        EXPECT_GT(speedup, previous) << ToString(p);
        previous = speedup;
    }
}

TEST(FrameModels, NeuRexIsFlatUnderPruningFlexNeRFerIsNot)
{
    // The Fig. 19 signature: structured pruning helps only the
    // sparsity-aware accelerator.
    const NeuRexModel neurex;
    const FlexNeRFerModel flex;
    WorkloadParams dense;
    WorkloadParams pruned;
    pruned.weight_prune_ratio = 0.9;

    const NerfWorkload wd = BuildWorkload("NeRF", dense);
    const NerfWorkload wp = BuildWorkload("NeRF", pruned);
    const double n_ratio = neurex.RunWorkload(wd).latency_ms /
                           neurex.RunWorkload(wp).latency_ms;
    const double f_ratio = flex.RunWorkload(wd).latency_ms /
                           flex.RunWorkload(wp).latency_ms;
    EXPECT_NEAR(n_ratio, 1.0, 0.05);
    EXPECT_GT(f_ratio, 3.0);
}

TEST(FrameModels, CodecTimeShareIsModest)
{
    // Section 6.3.1: format conversion is a small fraction of total time.
    const FlexNeRFerModel flex;
    const FrameCost c = flex.RunWorkload(BuildWorkload("Instant-NGP"));
    EXPECT_GE(c.codec_ms, 0.0);
    EXPECT_LT(c.codec_ms / c.latency_ms, 0.25);
}

}  // namespace
}  // namespace flexnerfer
