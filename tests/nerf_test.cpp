/**
 * @file
 * Tests for the NeRF pipeline substrates: rays, positional encoding (exact
 * vs. the Eq. 5/6 PEE approximation), hash encoding, MLP (FP64 vs quantized
 * incl. outlier-aware), volume rendering, scenes, images, and grid fitting.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "nerf/field_fit.h"
#include "nerf/hash_encoding.h"
#include "nerf/image.h"
#include "nerf/mlp.h"
#include "nerf/nerf_pipeline.h"
#include "nerf/positional_encoding.h"
#include "nerf/quantization.h"
#include "nerf/ray.h"
#include "nerf/renderer.h"
#include "nerf/scene.h"
#include "nerf/volume_rendering.h"

namespace flexnerfer {
namespace {

constexpr double kPi = 3.14159265358979323846;

TEST(Vec3, Basics)
{
    const Vec3 a{1.0, 2.0, 3.0};
    const Vec3 b{4.0, -5.0, 6.0};
    EXPECT_DOUBLE_EQ(a.Dot(b), 1.0 * 4 - 2 * 5 + 3 * 6);
    EXPECT_NEAR((a - a).Length(), 0.0, 1e-12);
    EXPECT_NEAR(a.Normalized().Length(), 1.0, 1e-12);
}

TEST(Camera, RaysAreUnitAndPointForward)
{
    Camera cam({64, 64, 50.0, {0.0, 0.0, 3.0}, {0.0, 0.0, 0.0},
                {0.0, 1.0, 0.0}});
    for (int y = 0; y < 64; y += 13) {
        for (int x = 0; x < 64; x += 13) {
            const Ray r = cam.GenerateRay(x, y);
            EXPECT_NEAR(r.direction.Length(), 1.0, 1e-12);
            EXPECT_LT(r.direction.z, 0.0);  // toward the origin
        }
    }
    // Centre ray passes (almost) through the look-at point.
    const Ray centre = cam.GenerateRay(31, 31);
    const Vec3 at3 = centre.At(3.0);
    EXPECT_NEAR(at3.x, 0.0, 0.1);
    EXPECT_NEAR(at3.y, 0.0, 0.1);
}

TEST(Sampling, StratifiedCoversInterval)
{
    const auto ts = StratifiedSamples(1.0, 5.0, 8, nullptr);
    ASSERT_EQ(ts.size(), 8u);
    for (std::size_t i = 0; i < ts.size(); ++i) {
        EXPECT_GT(ts[i], 1.0);
        EXPECT_LT(ts[i], 5.0);
        if (i > 0) {
            EXPECT_GT(ts[i], ts[i - 1]);
        }
    }
    EXPECT_NEAR(ts[0], 1.25, 1e-12);  // bin midpoints when rng is null
}

TEST(PositionalEncoding, ExactValues)
{
    const auto enc = PositionalEncode(0.5, 3);
    ASSERT_EQ(enc.size(), 6u);
    EXPECT_NEAR(enc[0], std::sin(kPi * 0.5), 1e-12);
    EXPECT_NEAR(enc[1], std::cos(kPi * 0.5), 1e-12);
    EXPECT_NEAR(enc[2], std::sin(2 * kPi * 0.5), 1e-12);
    EXPECT_NEAR(enc[5], std::cos(4 * kPi * 0.5), 1e-12);
}

TEST(PositionalEncoding, ApproximationErrorIsBounded)
{
    // The Eq. 5/6 piecewise-quadratic approximation has max error ~0.056.
    double max_err = 0.0;
    for (double v = -8.0; v <= 8.0; v += 0.001) {
        max_err = std::max(max_err, std::fabs(ApproxSinHalfPi(v) -
                                              std::sin(kPi * v / 2.0)));
        max_err = std::max(max_err, std::fabs(ApproxCosHalfPi(v) -
                                              std::cos(kPi * v / 2.0)));
    }
    EXPECT_LT(max_err, 0.06);
    EXPECT_GT(max_err, 0.01);  // it is an approximation, not exact
}

TEST(PositionalEncoding, ApproxMatchesPeaksExactly)
{
    EXPECT_DOUBLE_EQ(ApproxSinHalfPi(1.0), 1.0);
    EXPECT_DOUBLE_EQ(ApproxSinHalfPi(3.0), -1.0);
    EXPECT_DOUBLE_EQ(ApproxSinHalfPi(0.0), 0.0);
    EXPECT_DOUBLE_EQ(ApproxCosHalfPi(0.0), 1.0);
    EXPECT_DOUBLE_EQ(ApproxCosHalfPi(2.0), -1.0);
    EXPECT_DOUBLE_EQ(ApproxCosHalfPi(1.0), 0.0);
}

TEST(PositionalEncoding, ApproxEncodingTracksExact)
{
    Rng rng(1);
    for (int trial = 0; trial < 200; ++trial) {
        const double v = rng.Uniform(-1.0, 1.0);
        const auto exact = PositionalEncode(v, 6);
        const auto approx = PositionalEncodeApprox(v, 6);
        ASSERT_EQ(exact.size(), approx.size());
        for (std::size_t i = 0; i < exact.size(); ++i) {
            EXPECT_NEAR(approx[i], exact[i], 0.06);
        }
    }
}

TEST(PositionalEncoding, EngineThroughput)
{
    const PositionalEncodingEngine pee{10};
    EXPECT_DOUBLE_EQ(pee.EncodeCycles(64), 1.0);
    EXPECT_DOUBLE_EQ(pee.EncodeCycles(65), 2.0);
    EXPECT_DOUBLE_EQ(pee.EncodeCycles(4096), 64.0);
    EXPECT_GT(PositionalEncodingEngine::kAreaReductionVsDesignWare, 8.0);
}

TEST(HashGrid, ResolutionGrowsGeometrically)
{
    Rng rng(2);
    const HashGrid grid({8, 14, 2, 4, 1.6, -1.5, 1.5, 1e-2}, rng);
    EXPECT_EQ(grid.Resolution(0), 4);
    for (int level = 1; level < grid.levels(); ++level) {
        EXPECT_GT(grid.Resolution(level), grid.Resolution(level - 1));
    }
    EXPECT_TRUE(grid.IsDenseLevel(0));
    EXPECT_FALSE(grid.IsDenseLevel(7));  // 4 * 1.6^7 ~ 107^3 > 2^14
}

TEST(HashGrid, QueryIsContinuousAndDeterministic)
{
    Rng rng(3);
    const HashGrid grid({6, 12, 2, 4, 1.5, -1.0, 1.0, 0.1}, rng);
    const Vec3 p{0.3, -0.2, 0.5};
    const auto f1 = grid.Query(p);
    const auto f2 = grid.Query(p);
    EXPECT_EQ(f1, f2);
    ASSERT_EQ(static_cast<int>(f1.size()), grid.OutputDim());

    // Small moves produce small feature changes (trilinear continuity).
    const auto f3 = grid.Query(p + Vec3{1e-5, 0.0, 0.0});
    for (std::size_t i = 0; i < f1.size(); ++i) {
        EXPECT_NEAR(f1[i], f3[i], 1e-3);
    }
}

TEST(HashGrid, TapsReconstructQuery)
{
    Rng rng(4);
    HashGrid grid({4, 10, 3, 4, 1.7, -1.0, 1.0, 0.1}, rng);
    std::vector<std::vector<HashGrid::Tap>> taps;
    const Vec3 p{0.11, 0.42, -0.73};
    const auto feats = grid.QueryWithTaps(p, &taps);
    ASSERT_EQ(taps.size(), feats.size());
    for (std::size_t i = 0; i < feats.size(); ++i) {
        double rebuilt = 0.0;
        double weight_sum = 0.0;
        for (const HashGrid::Tap& tap : taps[i]) {
            rebuilt += grid.parameters()[tap.parameter] * tap.weight;
            weight_sum += tap.weight;
        }
        EXPECT_NEAR(rebuilt, feats[i], 1e-12);
        EXPECT_NEAR(weight_sum, 1.0, 1e-9);  // trilinear partition of unity
    }
}

TEST(HashGrid, AccessStatsCountEightCornersPerLevel)
{
    Rng rng(5);
    const HashGrid grid({5, 12, 2, 4, 1.6, -1.0, 1.0, 0.1}, rng);
    HashAccessStats stats;
    grid.CountAccesses({0.2, 0.3, 0.4}, &stats);
    EXPECT_EQ(stats.queries, 1);
    EXPECT_EQ(stats.corner_lookups, 8 * grid.levels());
    EXPECT_EQ(stats.dense_level_lookups + stats.hashed_level_lookups,
              stats.corner_lookups);
}

TEST(Quantization, RoundTripWithinHalfStep)
{
    Rng rng(6);
    for (Precision p : kAllPrecisions) {
        std::vector<double> values;
        for (int i = 0; i < 500; ++i) values.push_back(rng.Gaussian(0, 1));
        const double scale = ComputeScale(values, p);
        for (double v : values) {
            const double rt =
                DequantizeValue(QuantizeValue(v, scale, p), scale);
            EXPECT_NEAR(rt, v, scale * 0.5 + 1e-12);
        }
    }
}

TEST(Quantization, OutlierSplitReconstructs)
{
    Rng rng(7);
    MatrixD m(16, 16);
    for (int r = 0; r < 16; ++r) {
        for (int c = 0; c < 16; ++c) {
            m.at(r, c) = rng.Gaussian(0.0, 0.1);
        }
    }
    m.at(3, 5) = 4.0;  // strong outlier
    m.at(9, 2) = -3.5;

    const OutlierSplit split = SplitOutliers(m, Precision::kInt4, 0.02);
    EXPECT_GT(split.outlier_density, 0.0);
    EXPECT_LT(split.outlier_density, 0.1);
    // Outlier matrix is sparse and holds the two spikes.
    EXPECT_NE(split.outliers.values.at(3, 5), 0);
    EXPECT_NE(split.outliers.values.at(9, 2), 0);

    double max_err = 0.0;
    for (int r = 0; r < 16; ++r) {
        for (int c = 0; c < 16; ++c) {
            const double rebuilt =
                DequantizeValue(split.base.values.at(r, c),
                                split.base.scale) +
                DequantizeValue(split.outliers.values.at(r, c),
                                split.outliers.scale);
            max_err = std::max(max_err, std::fabs(rebuilt - m.at(r, c)));
        }
    }
    // Within the INT4 step of the *inlier* scale — far tighter than naive
    // INT4 with outlier-stretched scale.
    EXPECT_LT(max_err, split.base.scale);
}

TEST(Quantization, OutlierAwareScaleIsTighter)
{
    Rng rng(8);
    std::vector<double> params;
    for (int i = 0; i < 4000; ++i) params.push_back(rng.Gaussian(0, 0.05));
    params[7] = 3.0;  // one huge outlier

    std::vector<double> naive = params;
    QuantizeParametersInPlace(&naive, Precision::kInt4);
    std::vector<double> outlier_aware = params;
    QuantizeParametersInPlace(&outlier_aware, Precision::kInt4,
                              {true, 0.01});

    double naive_err = 0.0, aware_err = 0.0;
    for (std::size_t i = 0; i < params.size(); ++i) {
        naive_err += std::fabs(naive[i] - params[i]);
        aware_err += std::fabs(outlier_aware[i] - params[i]);
    }
    EXPECT_LT(aware_err, 0.2 * naive_err);
}

TEST(Mlp, ForwardShapesAndDeterminism)
{
    Rng rng(9);
    const Mlp mlp({8, {16, 16}, 4, 0.05, 0.4, 2.5}, rng);
    EXPECT_EQ(mlp.NumLayers(), 3);
    const std::vector<double> x(8, 0.3);
    const auto y1 = mlp.Forward(x);
    const auto y2 = mlp.Forward(x);
    ASSERT_EQ(y1.size(), 4u);
    EXPECT_EQ(y1, y2);
}

TEST(Mlp, QuantizedInt16TracksReference)
{
    Rng rng(10);
    const Mlp mlp({8, {32, 32}, 4, 0.05, 0.4, 2.5}, rng);
    Rng input_rng(11);
    double max_rel = 0.0;
    for (int trial = 0; trial < 50; ++trial) {
        std::vector<double> x(8);
        for (double& v : x) v = input_rng.Uniform(-1.0, 1.0);
        const auto ref = mlp.Forward(x);
        const auto q = mlp.ForwardQuantized(x, Precision::kInt16);
        for (std::size_t i = 0; i < ref.size(); ++i) {
            max_rel = std::max(max_rel, std::fabs(q[i] - ref[i]));
        }
    }
    EXPECT_LT(max_rel, 0.01);
}

TEST(Mlp, OutlierPolicyRecoversInt4Accuracy)
{
    Rng rng(12);
    const Mlp mlp({8, {32, 32}, 4, 0.08, 0.4, 3.0}, rng);
    Rng input_rng(13);
    double err_naive = 0.0, err_outlier = 0.0;
    for (int trial = 0; trial < 30; ++trial) {
        std::vector<double> x(8);
        for (double& v : x) v = input_rng.Uniform(-1.0, 1.0);
        const auto ref = mlp.Forward(x);
        const auto naive = mlp.ForwardQuantized(x, Precision::kInt4);
        const auto aware = mlp.ForwardQuantized(x, Precision::kInt4,
                                                {true, 0.08});
        for (std::size_t i = 0; i < ref.size(); ++i) {
            err_naive += std::fabs(naive[i] - ref[i]);
            err_outlier += std::fabs(aware[i] - ref[i]);
        }
    }
    EXPECT_LT(err_outlier, err_naive * 0.7);
}

TEST(VolumeRendering, EmptySpaceShowsBackground)
{
    std::vector<RaySample> samples(16);
    for (int i = 0; i < 16; ++i) samples[i] = {1.0 + 0.1 * i, 0.0, {}};
    const auto out = CompositeRay(samples, {1.0, 0.0, 0.5});
    EXPECT_NEAR(out.color.x, 1.0, 1e-9);
    EXPECT_NEAR(out.color.z, 0.5, 1e-9);
    EXPECT_NEAR(out.opacity, 0.0, 1e-9);
}

TEST(VolumeRendering, OpaqueWallReturnsItsColor)
{
    std::vector<RaySample> samples;
    for (int i = 0; i < 16; ++i) {
        samples.push_back({1.0 + 0.1 * i, 500.0, {0.2, 0.6, 0.9}});
    }
    const auto out = CompositeRay(samples, {1.0, 1.0, 1.0});
    EXPECT_NEAR(out.color.x, 0.2, 1e-3);
    EXPECT_NEAR(out.color.y, 0.6, 1e-3);
    EXPECT_NEAR(out.opacity, 1.0, 1e-6);
    EXPECT_NEAR(out.expected_depth, 1.0, 0.05);  // first surface wins
}

TEST(VolumeRendering, OccluderHidesBackObject)
{
    std::vector<RaySample> samples;
    samples.push_back({1.0, 400.0, {1.0, 0.0, 0.0}});  // red wall in front
    samples.push_back({1.1, 400.0, {1.0, 0.0, 0.0}});
    samples.push_back({2.0, 400.0, {0.0, 1.0, 0.0}});  // green wall behind
    const auto out = CompositeRay(samples, {0.0, 0.0, 0.0});
    EXPECT_GT(out.color.x, 0.95);
    EXPECT_LT(out.color.y, 0.05);
}

TEST(VolumeRendering, TransmittanceMatchesEq3)
{
    std::vector<RaySample> samples = {
        {1.0, 2.0, {}}, {1.5, 1.0, {}}, {2.0, 0.5, {}}};
    // T_2 = exp(-(2.0 * 0.5 + 1.0 * 0.5)).
    EXPECT_NEAR(TransmittanceBefore(samples, 2), std::exp(-1.5), 1e-12);
    EXPECT_DOUBLE_EQ(TransmittanceBefore(samples, 0), 1.0);
}

TEST(Scenes, ComplexityOrdering)
{
    const double mic = ProceduralScene::Mic().Occupancy();
    const double lego = ProceduralScene::Lego().Occupancy();
    const double palace = ProceduralScene::Palace().Occupancy();
    EXPECT_LT(mic, lego);
    EXPECT_LT(lego, palace);
    EXPECT_GT(mic, 0.0);
}

TEST(Scenes, FactoryByName)
{
    EXPECT_EQ(ProceduralScene::ByName("mic").name(), "mic");
    EXPECT_EQ(ProceduralScene::ByName("palace").NumPrimitives(),
              ProceduralScene::Palace().NumPrimitives());
}

TEST(Scenes, QueryReturnsBoundedColor)
{
    const ProceduralScene lego = ProceduralScene::Lego();
    Rng rng(14);
    for (int i = 0; i < 500; ++i) {
        const Vec3 p{rng.Uniform(-1.5, 1.5), rng.Uniform(-1.5, 1.5),
                     rng.Uniform(-1.5, 1.5)};
        double sigma;
        Vec3 rgb;
        lego.Query(p, Vec3{0, 0, 1}, &sigma, &rgb);
        EXPECT_GE(sigma, 0.0);
        EXPECT_GE(rgb.x, 0.0);
        EXPECT_LE(rgb.x, 1.0);
        EXPECT_GE(rgb.y, 0.0);
        EXPECT_LE(rgb.y, 1.0);
    }
}

TEST(Image, PsnrProperties)
{
    Image a(8, 8), b(8, 8);
    for (int y = 0; y < 8; ++y) {
        for (int x = 0; x < 8; ++x) {
            a.at(x, y) = {0.5, 0.5, 0.5};
            b.at(x, y) = {0.5, 0.5, 0.5};
        }
    }
    EXPECT_TRUE(std::isinf(Psnr(a, b)));
    b.at(0, 0) = {1.0, 0.5, 0.5};
    const double p1 = Psnr(a, b);
    b.at(1, 1) = {1.0, 1.0, 1.0};
    const double p2 = Psnr(a, b);
    EXPECT_GT(p1, p2);  // more error, lower PSNR
    EXPECT_GT(p1, 20.0);
}

TEST(Renderer, MicSceneRendersObjectAndBackground)
{
    Renderer renderer({32, 1.5, 4.8, 1.0, {1.0, 1.0, 1.0}});
    Camera cam({32, 32, 50.0, {0.0, 0.0, 3.0}, {0.0, 0.0, 0.0},
                {0.0, 1.0, 0.0}});
    RenderStats stats;
    const Image img =
        renderer.Render(ProceduralScene::Mic(), cam, &stats);
    EXPECT_EQ(stats.rays, 32 * 32);
    EXPECT_GT(stats.active_samples, 0);
    // A corner pixel shows the white background; the mic head (upper
    // centre) is darker.
    EXPECT_GT(img.at(0, 0).x, 0.95);
    EXPECT_LT(img.at(16, 10).x, 0.9);
}

TEST(Renderer, ComplexSceneHasMoreActiveSamples)
{
    Renderer renderer({32, 1.5, 4.8, 1.0, {1.0, 1.0, 1.0}});
    Camera cam({24, 24, 55.0, {0.0, 0.5, 3.2}, {0.0, 0.0, 0.0},
                {0.0, 1.0, 0.0}});
    RenderStats mic_stats, palace_stats;
    renderer.Render(ProceduralScene::Mic(), cam, &mic_stats);
    renderer.Render(ProceduralScene::Palace(), cam, &palace_stats);
    EXPECT_GT(palace_stats.mean_active_per_ray,
              1.2 * mic_stats.mean_active_per_ray);
}

TEST(GridField, FitReducesErrorAndRendersScene)
{
    Rng rng(15);
    GridField::Config config;
    config.grid = {6, 12, 4, 4, 1.6, -1.5, 1.5, 1e-2};
    GridField field(config, rng);

    const ProceduralScene target = ProceduralScene::Mic();
    const auto report = field.Fit(target, 3000, 8, 0.08, rng);
    EXPECT_LT(report.final_rmse, 0.5 * report.initial_rmse);

    // The fitted field must reproduce the scene reasonably in image space.
    Renderer renderer({24, 1.5, 4.8, 1.0, {1.0, 1.0, 1.0}});
    Camera cam({24, 24, 50.0, {0.0, 0.0, 3.0}, {0.0, 0.0, 0.0},
                {0.0, 1.0, 0.0}});
    const Image ref = renderer.Render(target, cam);
    const Image fit = renderer.Render(field, cam);
    EXPECT_GT(Psnr(ref, fit), 14.0);
}

TEST(GridField, Int16QuantizationIsNearlyLossless)
{
    Rng rng(16);
    GridField::Config config;
    config.grid = {6, 12, 4, 4, 1.6, -1.5, 1.5, 1e-2};
    GridField field(config, rng);
    field.Fit(ProceduralScene::Mic(), 2000, 6, 0.08, rng);

    Renderer renderer({24, 1.5, 4.8, 1.0, {1.0, 1.0, 1.0}});
    Camera cam({24, 24, 50.0, {0.0, 0.0, 3.0}, {0.0, 0.0, 0.0},
                {0.0, 1.0, 0.0}});
    const Image fp = renderer.Render(field, cam);

    GridField q16 = field;
    q16.QuantizeTables(Precision::kInt16);
    const Image i16 = renderer.Render(q16, cam);
    EXPECT_GT(Psnr(fp, i16), 40.0);

    GridField q4 = field;
    q4.QuantizeTables(Precision::kInt4);
    const Image i4 = renderer.Render(q4, cam);
    EXPECT_LT(Psnr(fp, i4), Psnr(fp, i16));
}

TEST(VanillaNerf, FieldProducesValidOutputs)
{
    Rng rng(20);
    VanillaNerfField::Config config;
    config.mlp = {0, {32, 32}, 4, 0.05, 0.4, 2.5};
    const VanillaNerfField field(config, rng);
    Rng probe(21);
    for (int i = 0; i < 200; ++i) {
        const Vec3 p{probe.Uniform(-1, 1), probe.Uniform(-1, 1),
                     probe.Uniform(-1, 1)};
        double sigma;
        Vec3 rgb;
        field.Query(p, Vec3{0, 0, 1}, &sigma, &rgb);
        EXPECT_GE(sigma, 0.0);
        EXPECT_GT(rgb.x, 0.0);
        EXPECT_LT(rgb.x, 1.0);
    }
}

TEST(VanillaNerf, ApproximateEncodingTracksExactRender)
{
    // Section 5.2.1: the PEE's Eq. 5/6 approximation preserves rendering
    // quality. Render the same MLP field with both encodings.
    Rng rng(22);
    VanillaNerfField::Config config;
    config.mlp = {0, {32}, 4, 0.05, 0.3, 2.0};
    VanillaNerfField field(config, rng);

    Renderer renderer({24, 1.5, 4.5, 1.0, {1.0, 1.0, 1.0}});
    Camera cam({24, 24, 50.0, {0.0, 0.0, 3.0}, {0.0, 0.0, 0.0},
                {0.0, 1.0, 0.0}});
    const Image exact = renderer.Render(field, cam);
    field.set_approximate_encoding(true);
    const Image approx = renderer.Render(field, cam);
    EXPECT_GT(Psnr(exact, approx), 22.0);
}

TEST(VanillaNerf, QuantizedInferencePathRenders)
{
    Rng rng(23);
    VanillaNerfField::Config config;
    config.mlp = {0, {32, 32}, 4, 0.05, 0.4, 2.5};
    VanillaNerfField field(config, rng);

    Renderer renderer({16, 1.5, 4.5, 1.0, {1.0, 1.0, 1.0}});
    Camera cam({16, 16, 50.0, {0.0, 0.0, 3.0}, {0.0, 0.0, 0.0},
                {0.0, 1.0, 0.0}});
    const Image fp = renderer.Render(field, cam);

    field.set_quantization(true, Precision::kInt16);
    const Image q16 = renderer.Render(field, cam);
    field.set_quantization(true, Precision::kInt4);
    const Image q4 = renderer.Render(field, cam);
    EXPECT_GT(Psnr(fp, q16), 30.0);
    EXPECT_GT(Psnr(fp, q16), Psnr(fp, q4));
}

}  // namespace
}  // namespace flexnerfer
