/**
 * @file
 * Tests for same-scene batch fusion: the FuseBatch workload transform
 * (structure, fingerprints, cache separation), the fused plan's
 * determinism and marginal-cost shape, the batched RenderService path
 * (per-element parity, counters, thread-invariant verdicts), and the
 * batch-window edge cases (solo cap, mixed tiers, mid-window sheds).
 */
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "accel/accelerator.h"
#include "accel/flexnerfer.h"
#include "models/workload.h"
#include "plan/frame_plan.h"
#include "plan/plan_cache.h"
#include "runtime/thread_pool.h"
#include "serve/admission.h"
#include "serve/render_service.h"
#include "serve/scene_registry.h"
#include "frame_cost_matchers.h"

namespace flexnerfer {
namespace {

SweepPoint
NgpFlexScene()
{
    SweepPoint spec;
    spec.backend = Backend::kFlexNeRFer;
    spec.precision = Precision::kInt8;
    spec.model = "Instant-NGP";
    return spec;
}

FlexNeRFerModel
Flex()
{
    FlexNeRFerModel::Config config;
    config.precision = Precision::kInt8;
    return FlexNeRFerModel(config);
}

TEST(FuseBatch, SingleElementIsTheIdentity)
{
    const NerfWorkload base = BuildWorkload("Instant-NGP");
    const NerfWorkload fused = FuseBatch(base, 1);
    EXPECT_EQ(fused.name, base.name);
    EXPECT_EQ(fused.ops.size(), base.ops.size());
    // Same fingerprint => same PlanCache key: a batch of one reuses the
    // solo frame instead of compiling a twin under another name.
    EXPECT_EQ(WorkloadFingerprint(fused), WorkloadFingerprint(base));
}

TEST(FuseBatch, ReplicatesOpsAndAddsCrossElementStageEdges)
{
    const NerfWorkload base = BuildWorkload("Instant-NGP");
    const std::size_t stride = base.ops.size();
    const NerfWorkload fused = FuseBatch(base, 3);

    EXPECT_EQ(fused.name, base.name + "+batch3");
    ASSERT_EQ(fused.ops.size(), 3 * stride);
    EXPECT_EQ(fused.samples_per_frame, 3.0 * base.samples_per_frame);
    EXPECT_EQ(fused.batch_size, base.batch_size);

    for (std::size_t element = 0; element < 3; ++element) {
        for (std::size_t i = 0; i < stride; ++i) {
            const WorkloadOp& op = fused.ops[element * stride + i];
            EXPECT_EQ(op.name, base.ops[i].name + "#e" +
                                   std::to_string(element));
            // Intra-element deps shift with the element...
            const std::size_t base_deps = base.ops[i].deps.size();
            ASSERT_EQ(op.deps.size(),
                      base_deps + (element > 0 ? 1u : 0u));
            for (std::size_t d = 0; d < base_deps; ++d) {
                EXPECT_EQ(op.deps[d],
                          base.ops[i].deps[d] + element * stride);
            }
            // ...and every op past element 0 waits on the *same stage*
            // of the previous element: unit stage occupancy, the edge
            // that makes the wavefront overlap element N's tail with
            // element N+1's head.
            if (element > 0) {
                EXPECT_EQ(op.deps.back(), (element - 1) * stride + i);
            }
        }
    }
}

TEST(FuseBatch, FingerprintsSeparateBatchShapesInThePlanCache)
{
    const NerfWorkload base = BuildWorkload("Instant-NGP");
    const std::string solo = WorkloadFingerprint(base);
    const std::string two = WorkloadFingerprint(FuseBatch(base, 2));
    const std::string three = WorkloadFingerprint(FuseBatch(base, 3));
    EXPECT_NE(solo, two);
    EXPECT_NE(solo, three);
    EXPECT_NE(two, three);

    // Each shape compiles its own entry — no fused frame ever replays
    // a differently-shaped batch's memo.
    PlanCache cache;
    const FlexNeRFerModel flex = Flex();
    cache.Prepare(flex, base);
    cache.Prepare(flex, FuseBatch(base, 2));
    cache.Prepare(flex, FuseBatch(base, 3));
    EXPECT_EQ(cache.size(), 3u);
    EXPECT_EQ(cache.stats().plan_misses, 3u);
}

TEST(FuseBatch, FusedPlanExecutesBitIdenticallySerialAndPooled)
{
    const FlexNeRFerModel flex = Flex();
    const NerfWorkload fused = FuseBatch(BuildWorkload("KiloNeRF"), 4);
    const FramePlan plan = flex.Plan(fused);
    const FrameCost serial = plan.Execute();
    ThreadPool pool(8);
    ExpectBitIdentical(plan.Execute(&pool), serial);
}

TEST(FuseBatch, MarginalCostStaysBelowTheSoloCriticalPath)
{
    // The economics the admission controller prices: growing a fused
    // frame by one element costs at most one bottleneck stage, so the
    // marginal critical path is positive yet below the solo frame's,
    // and the marginals telescope back to the fused total.
    const FlexNeRFerModel flex = Flex();
    const NerfWorkload base = BuildWorkload("Instant-NGP");
    std::vector<FrameCost> costs;
    for (std::size_t elements = 1; elements <= 4; ++elements) {
        costs.push_back(flex.Plan(FuseBatch(base, elements)).Execute());
    }
    const double solo = EstimatedServiceMs(costs[0]);
    double telescoped = solo;
    for (std::size_t k = 1; k < costs.size(); ++k) {
        const double marginal =
            EstimatedMarginalServiceMs(costs[k], costs[k - 1]);
        EXPECT_GT(marginal, 0.0) << "k = " << k;
        EXPECT_LT(marginal, solo) << "k = " << k;
        telescoped += marginal;
    }
    EXPECT_DOUBLE_EQ(telescoped, EstimatedServiceMs(costs.back()));
}

TEST(SceneRegistry, TouchBatchedAliasesTheSoloFrameAtOneElement)
{
    PlanCache cache;
    SceneRegistry registry(cache);
    registry.Register("ngp", NgpFlexScene());

    const auto solo = registry.Touch("ngp");
    const auto batched1 = registry.TouchBatched("ngp", 1);
    EXPECT_EQ(batched1->elements, 1u);
    ExpectBitIdentical(batched1->cost, solo->cost);
    EXPECT_EQ(cache.stats().plan_misses, 1u);  // no second compile

    // Two elements compile (and estimation-run) the fused shape once;
    // repeat touches replay the pinned entry.
    const auto batched2 = registry.TouchBatched("ngp", 2);
    EXPECT_EQ(batched2->elements, 2u);
    EXPECT_EQ(cache.stats().plan_misses, 2u);
    EXPECT_GT(EstimatedServiceMs(batched2->cost),
              EstimatedServiceMs(solo->cost));
    EXPECT_EQ(registry.TouchBatched("ngp", 2).get(), batched2.get());
    EXPECT_EQ(cache.stats().plan_misses, 2u);
}

/** Submits @p count same-scene requests at one arrival instant. */
std::vector<ServeTicket>
SubmitBurst(RenderService* service, const std::string& scene,
            int count, double arrival_ms)
{
    std::vector<ServeTicket> tickets;
    for (int i = 0; i < count; ++i) {
        SceneRequest request;
        request.scene = scene;
        request.arrival_ms = arrival_ms;
        tickets.push_back(service->Submit(request));
    }
    return tickets;
}

TEST(BatchedRenderService, FusedRequestsKeepPerElementParity)
{
    ServeConfig config;
    config.threads = 2;
    config.batch_window_ms = 1e6;
    RenderService service(config);
    service.RegisterScene("ngp", NgpFlexScene());
    const FrameCost warm = service.WarmScene("ngp");

    const std::vector<ServeTicket> tickets =
        SubmitBurst(&service, "ngp", 4, 0.0);
    for (ServeTicket ticket : tickets) {
        const RenderResult result = service.Wait(ticket);
        EXPECT_EQ(result.status, RequestStatus::kCompleted);
        // Every element of the fused execution reports the *solo* warm
        // cost: fusion is an execution strategy, not a result change.
        ExpectBitIdentical(result.cost, warm);
        EXPECT_EQ(result.batch_elements, 4u);
    }

    const ServiceStats stats = service.Snapshot();
    EXPECT_EQ(stats.accepted, 4u);
    EXPECT_EQ(stats.completed, 4u);
    EXPECT_EQ(stats.batches_dispatched, 1u);
    EXPECT_EQ(stats.fused_batches, 1u);
    EXPECT_EQ(stats.batched_requests, 4u);
    EXPECT_EQ(stats.max_batch_elements, 4u);
    EXPECT_DOUBLE_EQ(stats.batch_occupancy, 4.0);
    // One fused dispatch replays one memoized frame — hit accounting
    // follows batches in fused mode.
    EXPECT_EQ(stats.cache.frame_hits, stats.batches_dispatched);
}

TEST(BatchedRenderService, FullBatchDispatchesAndReopens)
{
    ServeConfig config;
    config.threads = 1;
    config.batch_window_ms = 1e6;
    config.max_batch_elements = 2;
    RenderService service(config);
    service.RegisterScene("ngp", NgpFlexScene());
    service.WarmScene("ngp");

    SubmitBurst(&service, "ngp", 5, 0.0);
    service.WaitAll();
    const ServiceStats stats = service.Snapshot();
    EXPECT_EQ(stats.accepted, 5u);
    // Cap 2 over 5 requests: two full batches plus a solo remainder.
    EXPECT_EQ(stats.batches_dispatched, 3u);
    EXPECT_EQ(stats.fused_batches, 2u);
    EXPECT_EQ(stats.max_batch_elements, 2u);
    EXPECT_EQ(stats.batched_requests, 4u);
}

TEST(BatchedRenderService, SoloCapKeepsEveryBatchASingleFrame)
{
    // max_batch_elements = 1: windows open and close but nothing ever
    // fuses — the degenerate configuration must still drain cleanly.
    ServeConfig config;
    config.threads = 1;
    config.batch_window_ms = 1e6;
    config.max_batch_elements = 1;
    RenderService service(config);
    service.RegisterScene("ngp", NgpFlexScene());
    const FrameCost warm = service.WarmScene("ngp");

    const std::vector<ServeTicket> tickets =
        SubmitBurst(&service, "ngp", 3, 0.0);
    for (ServeTicket ticket : tickets) {
        const RenderResult result = service.Wait(ticket);
        EXPECT_EQ(result.status, RequestStatus::kCompleted);
        EXPECT_EQ(result.batch_elements, 1u);
        ExpectBitIdentical(result.cost, warm);
    }
    const ServiceStats stats = service.Snapshot();
    EXPECT_EQ(stats.batches_dispatched, 3u);
    EXPECT_EQ(stats.fused_batches, 0u);
    EXPECT_EQ(stats.max_batch_elements, 1u);
    EXPECT_DOUBLE_EQ(stats.batch_occupancy, 1.0);
}

TEST(BatchedRenderService, MixedTiersFuseIntoOneExecution)
{
    ServeConfig config;
    config.threads = 2;
    config.batch_window_ms = 1e6;
    TierPolicy paid;
    paid.name = "paid";
    paid.weight = 4.0;
    TierPolicy free_tier;
    free_tier.name = "free";
    free_tier.weight = 1.0;
    config.admission.tiers = {paid, free_tier};
    RenderService service(config);
    service.RegisterScene("ngp", NgpFlexScene());
    service.WarmScene("ngp");

    std::vector<ServeTicket> tickets;
    for (int i = 0; i < 4; ++i) {
        SceneRequest request;
        request.scene = "ngp";
        request.tier = static_cast<std::size_t>(i % 2);
        request.arrival_ms = 0.0;
        tickets.push_back(service.Submit(request));
    }
    // Tiers shape verdicts, not batch membership: all four ride one
    // fused execution yet keep their own tier in the result.
    for (std::size_t i = 0; i < tickets.size(); ++i) {
        const RenderResult result = service.Wait(tickets[i]);
        EXPECT_EQ(result.status, RequestStatus::kCompleted);
        EXPECT_EQ(result.tier, i % 2);
        EXPECT_EQ(result.batch_elements, 4u);
    }
    const ServiceStats stats = service.Snapshot();
    EXPECT_EQ(stats.batches_dispatched, 1u);
    ASSERT_EQ(stats.tiers.size(), 2u);
    EXPECT_EQ(stats.tiers[0].accepted, 2u);
    EXPECT_EQ(stats.tiers[1].accepted, 2u);
}

TEST(BatchedRenderService, MidWindowShedConsumesNoBatchSlot)
{
    ServeConfig config;
    config.threads = 1;
    config.batch_window_ms = 1e6;
    config.max_batch_elements = 3;
    RenderService service(config);
    service.RegisterScene("ngp", NgpFlexScene());
    const double est = EstimatedServiceMs(service.WarmScene("ngp"));

    SceneRequest request;
    request.scene = "ngp";
    request.arrival_ms = 0.0;
    const ServeTicket opener = service.Submit(request);
    // Infeasible even at the marginal price: sheds, and must leave the
    // open batch untouched.
    SceneRequest hopeless = request;
    hopeless.deadline_ms = 1e-6 * est;
    const ServeTicket shed = service.Submit(hopeless);
    const ServeTicket joiner_a = service.Submit(request);
    const ServeTicket joiner_b = service.Submit(request);

    const RenderResult shed_result = service.Wait(shed);
    EXPECT_EQ(shed_result.status, RequestStatus::kShedDeadline);
    EXPECT_EQ(shed_result.batch_elements, 1u);
    // All three accepted requests fit the 3-slot batch — the shed in
    // the middle did not burn a slot or split the batch.
    for (ServeTicket ticket : {opener, joiner_a, joiner_b}) {
        const RenderResult result = service.Wait(ticket);
        EXPECT_EQ(result.status, RequestStatus::kCompleted);
        EXPECT_EQ(result.batch_elements, 3u);
    }
    const ServiceStats stats = service.Snapshot();
    EXPECT_EQ(stats.accepted, 3u);
    EXPECT_EQ(stats.shed_deadline, 1u);
    EXPECT_EQ(stats.batches_dispatched, 1u);
}

TEST(BatchedRenderService, WindowExpiryClosesTheBatchDeterministically)
{
    ServeConfig config;
    config.threads = 1;
    config.batch_window_ms = 10.0;
    RenderService service(config);
    service.RegisterScene("ngp", NgpFlexScene());
    service.WarmScene("ngp");

    SceneRequest request;
    request.scene = "ngp";
    request.arrival_ms = 0.0;
    const ServeTicket first = service.Submit(request);
    // Arrives after the 10 ms window closed: flushes the first batch
    // and opens its own.
    request.arrival_ms = 25.0;
    const ServeTicket second = service.Submit(request);

    EXPECT_EQ(service.Wait(first).batch_elements, 1u);
    EXPECT_EQ(service.Wait(second).batch_elements, 1u);
    const ServiceStats stats = service.Snapshot();
    EXPECT_EQ(stats.batches_dispatched, 2u);
    EXPECT_EQ(stats.fused_batches, 0u);
}

/** One deterministic mixed stream: bursts over three scenes with a
 *  tight-deadline shed salted in, submitted in a fixed order. */
std::vector<RenderResult>
RunDeterministicStream(int threads)
{
    ServeConfig config;
    config.threads = threads;
    config.batch_window_ms = 5e4;
    config.admission.max_queue_depth = 12;
    RenderService service(config);
    const std::vector<std::string> scenes = {"Instant-NGP", "KiloNeRF",
                                             "TensoRF"};
    for (const std::string& model : scenes) {
        SweepPoint spec = NgpFlexScene();
        spec.model = model;
        service.RegisterScene(model, spec);
        service.WarmScene(model);
    }

    std::vector<ServeTicket> tickets;
    for (int i = 0; i < 48; ++i) {
        SceneRequest request;
        request.scene = scenes[static_cast<std::size_t>(i) % 3];
        request.arrival_ms = 400.0 * (i / 6);  // bursts of six
        request.priority = i % 2;
        if (i % 11 == 7) request.deadline_ms = 1.0;  // forced shed
        tickets.push_back(service.Submit(request));
    }
    std::vector<RenderResult> results;
    for (ServeTicket ticket : tickets) {
        results.push_back(service.Wait(ticket));
    }
    return results;
}

TEST(BatchedRenderService, VerdictsAreInvariantAcrossThreadCounts)
{
    // The PR's determinism contract, batched edition: verdicts,
    // latencies, and batch shapes are pure functions of the admission
    // order in virtual time — the pool width must be unobservable.
    const std::vector<RenderResult> one = RunDeterministicStream(1);
    const std::vector<RenderResult> eight = RunDeterministicStream(8);
    ASSERT_EQ(one.size(), eight.size());
    for (std::size_t i = 0; i < one.size(); ++i) {
        EXPECT_EQ(one[i].status, eight[i].status) << "i = " << i;
        EXPECT_EQ(one[i].tier, eight[i].tier) << "i = " << i;
        EXPECT_EQ(one[i].latency_ms, eight[i].latency_ms) << "i = " << i;
        EXPECT_EQ(one[i].queue_wait_ms, eight[i].queue_wait_ms)
            << "i = " << i;
        EXPECT_EQ(one[i].batch_elements, eight[i].batch_elements)
            << "i = " << i;
        ExpectBitIdentical(one[i].cost, eight[i].cost);
    }
}

}  // namespace
}  // namespace flexnerfer
