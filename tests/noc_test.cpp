/**
 * @file
 * Tests for the NoC substrates: HMF-NoC tree (hops, feedback, dataflow
 * classification), 1D mesh, column-level bypass links, Benes routing, and
 * the composed distribution network.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "common/rng.h"
#include "noc/benes.h"
#include "noc/clb.h"
#include "noc/distribution_network.h"
#include "noc/hmf_noc.h"
#include "noc/mesh_1d.h"

namespace flexnerfer {
namespace {

TEST(HmfNoc, UnicastTraversesDepthEdges)
{
    HmfNoc noc({16, true, 0.18, 0.12, 8.0});
    const DeliveryStats s = noc.Deliver(1, {5});
    EXPECT_EQ(s.switch_hops, 4);  // depth of a 16-leaf tree
    EXPECT_EQ(s.buffer_reads, 1);
    EXPECT_EQ(s.dataflow, Dataflow::kUnicast);
}

TEST(HmfNoc, BroadcastSharesPrefixEdges)
{
    HmfNoc noc({8, true, 0.18, 0.12, 8.0});
    std::vector<int> all(8);
    std::iota(all.begin(), all.end(), 0);
    const DeliveryStats s = noc.Deliver(1, all);
    // Complete tree over 8 leaves: 2*8 - 2 = 14 edges, one buffer read.
    EXPECT_EQ(s.switch_hops, 14);
    EXPECT_EQ(s.buffer_reads, 1);
    EXPECT_EQ(s.dataflow, Dataflow::kBroadcast);
}

TEST(HmfNoc, MulticastCheaperThanRepeatedUnicast)
{
    HmfNoc multicast({64, true, 0.18, 0.12, 8.0});
    const DeliveryStats m = multicast.Deliver(1, {0, 1, 2, 3});
    EXPECT_EQ(m.dataflow, Dataflow::kMulticast);

    HmfNoc unicast({64, true, 0.18, 0.12, 8.0});
    int unicast_hops = 0;
    for (int d : {0, 1, 2, 3}) {
        unicast.ClearResidency();  // force fresh injections
        unicast_hops += unicast.Deliver(100 + d, {d}).switch_hops;
    }
    EXPECT_LT(m.switch_hops, unicast_hops);
}

TEST(HmfNoc, FeedbackAvoidsBufferRead)
{
    HmfNoc noc({16, true, 0.18, 0.12, 8.0});
    const DeliveryStats first = noc.Deliver(42, {3});
    EXPECT_EQ(first.buffer_reads, 1);
    EXPECT_FALSE(first.used_feedback);

    // The element is now latched at leaf 3; moving it to leaf 2 uses the
    // feedback path through their common ancestor instead of the buffer.
    const DeliveryStats second = noc.Deliver(42, {2});
    EXPECT_EQ(second.buffer_reads, 0);
    EXPECT_TRUE(second.used_feedback);
    EXPECT_GT(second.switch_hops, 0);
}

TEST(HmfNoc, FeedbackToNeighborIsCheaperThanReinjection)
{
    HmfNoc noc({64, true, 0.18, 0.12, 8.0});
    noc.Deliver(7, {10});
    const DeliveryStats fb = noc.Deliver(7, {11});  // sibling leaf
    EXPECT_TRUE(fb.used_feedback);
    // Sibling-to-sibling: up one level, down one level.
    EXPECT_LE(fb.switch_hops, 2);
}

TEST(HmfNoc, HmVariantNeverFeedsBack)
{
    HmfNoc noc({16, false, 0.18, 0.12, 8.0});
    noc.Deliver(42, {3});
    const DeliveryStats second = noc.Deliver(42, {2});
    EXPECT_FALSE(second.used_feedback);
    EXPECT_EQ(second.buffer_reads, 1);
}

TEST(HmfNoc, HmfSavesEnergyOnReusedTraffic)
{
    // Section 4.1.2: HMF-NoC spends ~2.5x less energy on on-chip memory
    // access for traffic with element reuse across waves.
    HmfNoc hmf({64, true, 0.18, 0.12, 8.0});
    HmfNoc hm({64, false, 0.18, 0.12, 8.0});
    Rng rng(9);
    for (int wave = 0; wave < 100; ++wave) {
        // Same 16 elements redistributed to shifting destinations.
        for (int e = 0; e < 16; ++e) {
            std::vector<int> dests = {(e * 4 + wave) % 64,
                                      (e * 4 + wave + 1) % 64};
            hmf.Deliver(e, dests);
            hm.Deliver(e, dests);
        }
    }
    EXPECT_GT(hm.EnergyPj() / hmf.EnergyPj(), 2.0);
}

TEST(HmfNoc, SwitchCount)
{
    EXPECT_EQ(HmfNoc({64, true, 0.18, 0.12, 8.0}).SwitchCount(), 63);
    EXPECT_EQ(HmfNoc({16, true, 0.18, 0.12, 8.0}).SwitchCount(), 15);
}

TEST(Mesh1d, HopsGrowWithDistance)
{
    Mesh1d mesh({8, 0.08, 8.0});
    EXPECT_EQ(mesh.Deliver(0), 1);
    EXPECT_EQ(mesh.Deliver(7), 8);
}

TEST(Mesh1d, WaveHopsAreTriangular)
{
    Mesh1d mesh({8, 0.08, 8.0});
    EXPECT_EQ(mesh.DeliverWave(8), 8 * 9 / 2);
}

TEST(Clb, BandwidthUtilizationMatchesSection413)
{
    // Paper: 25% at 16-bit, 50% at 8-bit without the CLB; 100% with it.
    EXPECT_DOUBLE_EQ(
        ColumnBypassLink::BwUtilization(Precision::kInt16, false), 0.25);
    EXPECT_DOUBLE_EQ(
        ColumnBypassLink::BwUtilization(Precision::kInt8, false), 0.5);
    EXPECT_DOUBLE_EQ(
        ColumnBypassLink::BwUtilization(Precision::kInt4, false), 1.0);
    for (Precision p : kAllPrecisions) {
        EXPECT_DOUBLE_EQ(ColumnBypassLink::BwUtilization(p, true), 1.0);
    }
}

TEST(Clb, SingleCycleForwarding)
{
    for (Precision p : kAllPrecisions) {
        EXPECT_EQ(ColumnBypassLink::LoadCycles(p, true), 1);
    }
    EXPECT_EQ(ColumnBypassLink::LoadCycles(Precision::kInt16, false), 4);
    EXPECT_EQ(ColumnBypassLink::LoadCycles(Precision::kInt8, false), 2);
    EXPECT_EQ(ColumnBypassLink::LoadCycles(Precision::kInt4, false), 1);
}

/** Benes routing over a range of port counts. */
class BenesPorts : public ::testing::TestWithParam<int>
{};

TEST_P(BenesPorts, RoutesIdentity)
{
    const int n = GetParam();
    BenesNetwork net(n);
    std::vector<int> identity(n);
    std::iota(identity.begin(), identity.end(), 0);
    const BenesRouting r = net.Route(identity);
    EXPECT_EQ(r.arrived_at, identity);
}

TEST_P(BenesPorts, RoutesReversal)
{
    const int n = GetParam();
    BenesNetwork net(n);
    std::vector<int> reversal(n);
    for (int i = 0; i < n; ++i) reversal[i] = n - 1 - i;
    EXPECT_EQ(net.Route(reversal).arrived_at, reversal);
}

TEST_P(BenesPorts, RoutesRandomPermutations)
{
    const int n = GetParam();
    BenesNetwork net(n);
    Rng rng(31 + n);
    for (int trial = 0; trial < 50; ++trial) {
        std::vector<int> perm(n);
        std::iota(perm.begin(), perm.end(), 0);
        std::shuffle(perm.begin(), perm.end(), rng.engine());
        EXPECT_EQ(net.Route(perm).arrived_at, perm);
    }
}

TEST_P(BenesPorts, StageAndSwitchCounts)
{
    const int n = GetParam();
    BenesNetwork net(n);
    int log = 0;
    while ((1 << log) < n) ++log;
    EXPECT_EQ(net.Stages(), 2 * log - 1);
    EXPECT_EQ(net.SwitchCount(), n / 2 * (2 * log - 1));
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, BenesPorts,
                         ::testing::Values(2, 4, 8, 16, 32, 64, 128));

TEST(Benes, EveryTokenCrossesAllStages)
{
    BenesNetwork net(16);
    std::vector<int> perm(16);
    std::iota(perm.begin(), perm.end(), 0);
    const BenesRouting r = net.Route(perm);
    // 16 tokens x 7 stages = 112 switch visits.
    EXPECT_EQ(r.switch_visits, 16 * net.Stages());
}

TEST(DistributionNetwork, ClassifiesDataflows)
{
    DistributionNetwork dn(
        {8, {8, true, 0.18, 0.12, 8.0}, {8, 0.08, 8.0}});
    std::vector<MulticastGroup> groups;
    groups.push_back({1, {{0, 0}}});                           // unicast
    groups.push_back({2, {{1, 0}, {1, 1}, {2, 3}}});           // multicast
    MulticastGroup bcast{3, {}};
    for (int r = 0; r < 8; ++r) {
        for (int c = 0; c < 8; ++c) bcast.dests.emplace_back(r, c);
    }
    groups.push_back(bcast);                                   // broadcast

    const WaveStats ws = dn.DistributeWave(groups, 8);
    EXPECT_EQ(ws.unicast_groups, 1);
    EXPECT_EQ(ws.multicast_groups, 1);
    EXPECT_EQ(ws.broadcast_groups, 1);
    EXPECT_GT(ws.switch_hops, 0);
    EXPECT_GT(ws.mesh_hops, 0);
    EXPECT_GT(dn.EnergyPj(), 0.0);
}

TEST(DistributionNetwork, ResidencyClearedPerTile)
{
    DistributionNetwork dn(
        {4, {4, true, 0.18, 0.12, 8.0}, {4, 0.08, 8.0}});
    std::vector<MulticastGroup> groups = {{5, {{0, 0}, {0, 1}}}};
    const WaveStats first = dn.DistributeWave(groups, 0);
    EXPECT_GT(first.buffer_reads, 0);
    const WaveStats reuse = dn.DistributeWave(groups, 0);
    EXPECT_GT(reuse.feedback_uses, 0);

    dn.StartTile();
    const WaveStats fresh = dn.DistributeWave(groups, 0);
    EXPECT_GT(fresh.buffer_reads, 0);
    EXPECT_EQ(fresh.feedback_uses, 0);
}

TEST(DistributionNetwork, UnicastWaveWrapsAroundMesh)
{
    DistributionNetwork dn(
        {4, {4, true, 0.18, 0.12, 8.0}, {4, 0.08, 8.0}});
    const WaveStats ws = dn.DistributeWave({}, 10);  // 4 + 4 + 2
    EXPECT_EQ(ws.mesh_hops, (4 * 5 / 2) + (4 * 5 / 2) + (1 + 2));
}

}  // namespace
}  // namespace flexnerfer
