/**
 * @file
 * Golden parity tests for the compile/execute frame split.
 *
 * The reference implementations below are verbatim copies of the legacy
 * per-model RunWorkload switch-loops (serial, one pass over the ops) that
 * the FramePlan layer replaced — extended only to record each op's
 * latency so the dependency-DAG critical path (FrameCost's
 * critical_path_ms, which postdates the legacy loops) can be derived by
 * an independent implementation of the same max+add recurrence
 * (ReferenceCriticalPathMs below: memoized DFS, vs the executor's
 * topological fold). Planned execution must reproduce their FrameCost
 * bit-identically — every field compared with EXPECT_EQ on the raw
 * doubles — for all 7 workloads x all precisions x all three
 * accelerator families, at any thread count, with or without plan/memo
 * caching. This is the contract that allowed deleting the legacy loops.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "accel/flexnerfer.h"
#include "accel/gpu_model.h"
#include "accel/neurex.h"
#include "common/units.h"
#include "gemm/engine.h"
#include "models/workload.h"
#include "plan/frame_planner.h"
#include "plan/gemm_memo.h"
#include "plan/plan_cache.h"
#include "runtime/thread_pool.h"
#include "frame_cost_matchers.h"

namespace flexnerfer {
namespace {

/**
 * Independent critical-path reference: memoized DFS over the workload's
 * dependency edges, folding finish(i) = max over deps(finish(dep)) +
 * latency(i) — the same per-node arithmetic FramePlan::Execute performs
 * in topological order, reached by a different traversal, so agreement
 * is meaningful and must be bit-exact (max is order-independent; each
 * finish value is one identical add).
 */
double
ReferenceCriticalPathMs(const NerfWorkload& workload,
                        const std::vector<double>& op_ms)
{
    std::vector<double> finish(workload.ops.size(), 0.0);
    std::vector<char> done(workload.ops.size(), 0);
    std::function<double(std::size_t)> visit =
        [&](std::size_t i) -> double {
        if (done[i]) return finish[i];
        double ready = 0.0;
        for (const std::size_t dep : workload.ops[i].deps) {
            ready = std::max(ready, visit(dep));
        }
        finish[i] = ready + op_ms[i];
        done[i] = 1;  // terminates: BuildWorkload emits acyclic edges
        return finish[i];
    };
    double critical_path = 0.0;
    for (std::size_t i = 0; i < workload.ops.size(); ++i) {
        critical_path = std::max(critical_path, visit(i));
    }
    return critical_path;
}

/** Legacy FlexNeRFerModel::RunWorkload, kept as the golden reference. */
FrameCost
LegacyFlexNeRFer(const FlexNeRFerModel& model, const NerfWorkload& workload)
{
    const FlexNeRFerModel::Config& config = model.config();
    FrameCost cost;
    double utilization_weighted = 0.0;
    double utilization_macs = 0.0;
    std::vector<double> op_ms;  // per-op latency, for the critical path

    for (const WorkloadOp& op : workload.ops) {
        switch (op.kind) {
          case OpKind::kGemm: {
            const GemmEngine engine(model.EngineConfigFor(op));
            const GemmResult r = engine.RunFromShape(op.gemm);
            const double codec_exposed_cycles = std::max(
                0.0, r.codec_cycles -
                         std::max(r.fetch_cycles, r.compute_cycles));
            const double codec_ms =
                CyclesToMs(codec_exposed_cycles, config.clock_ghz);
            const double dram_exposed =
                std::max(0.0, r.dram_ms - r.onchip_ms);
            cost.gemm_ms += r.latency_ms - dram_exposed - codec_ms;
            cost.codec_ms += codec_ms;
            cost.dram_ms += dram_exposed;
            cost.latency_ms += r.latency_ms;
            cost.energy_mj += r.EnergyMj();
            utilization_weighted += r.utilization * r.useful_macs;
            utilization_macs += r.useful_macs;
            op_ms.push_back(r.latency_ms);
            break;
          }
          case OpKind::kPositionalEncoding: {
            const double cycles =
                op.encoding_values / config.pee_values_per_cycle;
            const double ms = CyclesToMs(cycles, config.clock_ghz);
            cost.encoding_ms += ms;
            cost.latency_ms += ms;
            cost.energy_mj += PjToMj(op.encoding_values *
                                     config.pee_energy_pj_per_value);
            op_ms.push_back(ms);
            break;
          }
          case OpKind::kHashEncoding: {
            const double cycles =
                op.encoding_values / config.hee_queries_per_cycle;
            const double ms = CyclesToMs(cycles, config.clock_ghz);
            cost.encoding_ms += ms;
            cost.latency_ms += ms;
            cost.energy_mj += PjToMj(op.encoding_values *
                                     config.hee_energy_pj_per_query);
            op_ms.push_back(ms);
            break;
          }
          case OpKind::kOther: {
            const double cycles = op.other_flops / config.vector_lanes;
            const double ms = CyclesToMs(cycles, config.clock_ghz);
            cost.other_ms += ms;
            cost.latency_ms += ms;
            cost.energy_mj += PjToMj(op.other_flops *
                                     config.vector_energy_pj_per_flop);
            op_ms.push_back(ms);
            break;
          }
        }
    }
    cost.gemm_utilization =
        utilization_macs > 0.0 ? utilization_weighted / utilization_macs
                               : 0.0;
    cost.gemm_macs = utilization_macs;
    cost.energy_mj += cost.latency_ms * config.static_power_w;
    cost.critical_path_ms = ReferenceCriticalPathMs(workload, op_ms);
    return cost;
}

/** Legacy NeuRexModel::RunWorkload, kept as the golden reference. */
FrameCost
LegacyNeuRex(const NeuRexModel& model, const NerfWorkload& workload)
{
    const NeuRexModel::Config& config = model.config();
    FrameCost cost;
    double utilization_weighted = 0.0;
    double utilization_macs = 0.0;
    std::vector<double> op_ms;  // per-op latency, for the critical path

    for (const WorkloadOp& op : workload.ops) {
        switch (op.kind) {
          case OpKind::kGemm: {
            GemmEngineConfig engine_config;
            engine_config.precision = Precision::kInt16;
            engine_config.array_dim = config.array_dim;
            engine_config.clock_ghz = config.clock_ghz;
            engine_config.support_sparsity = false;
            engine_config.use_flex_codec = false;
            engine_config.compute_output = false;
            engine_config.noc_style = NocStyle::kHmTree;
            engine_config.dram_bandwidth_gb_s = config.dram_gb_s;
            engine_config.stream_a_from_dram = false;
            engine_config.write_c_to_dram = false;

            GemmShape dense_shape = op.gemm;
            dense_shape.density_a = 1.0;
            dense_shape.density_b = 1.0;
            dense_shape.structured_prune_b = 0.0;

            const GemmEngine engine(engine_config);
            const GemmResult r = engine.RunFromShape(dense_shape);
            const double dram_exposed =
                std::max(0.0, r.dram_ms - r.onchip_ms);
            cost.gemm_ms += r.latency_ms - dram_exposed;
            cost.dram_ms += dram_exposed;
            cost.latency_ms += r.latency_ms;
            cost.energy_mj += r.EnergyMj();
            const double useful = op.Macs() * op.gemm.density_a *
                                  op.gemm.density_b *
                                  (1.0 - op.gemm.structured_prune_b);
            utilization_weighted +=
                (r.issued_macs > 0.0 ? useful / r.issued_macs : 0.0) *
                useful;
            utilization_macs += useful;
            op_ms.push_back(r.latency_ms);
            break;
          }
          case OpKind::kPositionalEncoding: {
            const double cycles =
                op.encoding_values / config.posenc_values_per_cycle;
            const double ms = CyclesToMs(cycles, config.clock_ghz);
            cost.encoding_ms += ms;
            cost.latency_ms += ms;
            cost.energy_mj += PjToMj(op.encoding_values *
                                     config.posenc_energy_pj_per_value);
            op_ms.push_back(ms);
            break;
          }
          case OpKind::kHashEncoding: {
            const double cycles =
                op.encoding_values / config.hee_queries_per_cycle;
            const double ms = CyclesToMs(cycles, config.clock_ghz);
            cost.encoding_ms += ms;
            cost.latency_ms += ms;
            cost.energy_mj += PjToMj(op.encoding_values *
                                     config.hee_energy_pj_per_query);
            op_ms.push_back(ms);
            break;
          }
          case OpKind::kOther: {
            const double cycles = op.other_flops / config.vector_lanes;
            const double ms = CyclesToMs(cycles, config.clock_ghz);
            cost.other_ms += ms;
            cost.latency_ms += ms;
            cost.energy_mj += PjToMj(op.other_flops *
                                     config.vector_energy_pj_per_flop);
            op_ms.push_back(ms);
            break;
          }
        }
    }
    cost.gemm_utilization =
        utilization_macs > 0.0 ? utilization_weighted / utilization_macs
                               : 0.0;
    cost.gemm_macs = utilization_macs;
    cost.energy_mj += cost.latency_ms * config.static_power_w;
    cost.critical_path_ms = ReferenceCriticalPathMs(workload, op_ms);
    return cost;
}

/** Legacy GpuModel::RunWorkload, kept as the golden reference. */
FrameCost
LegacyGpu(const GpuModel& model, const NerfWorkload& workload)
{
    const GpuModel::Config& config = model.config();
    FrameCost cost;
    const double peak_flops = config.fp32_tflops * 1e12;
    const double bw = config.dram_gb_s * 1e9;
    double busy_joules = 0.0;
    std::vector<double> per_op_ms;  // for the critical path

    for (const WorkloadOp& op : workload.ops) {
        double op_ms = 0.0;
        double utilization = 0.0;
        switch (op.kind) {
          case OpKind::kGemm: {
            const double macs = op.Macs();
            const double eff = model.GemmEfficiency(op.gemm.k, op.gemm.n);
            const double compute_s = 2.0 * macs / (peak_flops * eff);
            const double launches = std::ceil(
                static_cast<double>(op.gemm.m) / workload.batch_size);
            const double weight_bytes =
                static_cast<double>(op.gemm.k) * op.gemm.n * 4.0 * launches;
            const double act_bytes =
                static_cast<double>(op.gemm.m) * (op.gemm.k + op.gemm.n) *
                4.0;
            const double memory_s = (weight_bytes + act_bytes) / bw;
            const double launch_s =
                launches * config.kernel_launch_us * 1e-6;
            op_ms = (std::max(compute_s, memory_s) + launch_s) * 1e3;
            cost.gemm_ms += op_ms;
            utilization =
                2.0 * macs / (op_ms * 1e-3 * peak_flops + 1e-30);
            break;
          }
          case OpKind::kPositionalEncoding: {
            const double flops =
                op.encoding_values * config.trig_flops_per_value;
            const double sfu_s = flops / (peak_flops * 0.25);
            const double bytes = op.encoding_values * 16.0;
            op_ms = std::max(sfu_s, bytes / bw) * 1e3;
            cost.encoding_ms += op_ms;
            utilization = 0.10;
            break;
          }
          case OpKind::kHashEncoding: {
            const double bytes = op.encoding_values * 32.0;
            op_ms = bytes / (bw * config.gather_bw_fraction) * 1e3;
            cost.encoding_ms += op_ms;
            utilization = 0.06;
            break;
          }
          case OpKind::kOther: {
            op_ms = op.other_flops / (peak_flops * 0.30) * 1e3;
            cost.other_ms += op_ms;
            utilization = 0.30;
            break;
          }
        }
        cost.latency_ms += op_ms;
        const double power =
            config.idle_power_w +
            (config.board_power_w - config.idle_power_w) *
                std::min(1.0, utilization);
        busy_joules += power * op_ms * 1e-3;
        per_op_ms.push_back(op_ms);
    }
    cost.energy_mj = busy_joules * 1e3;
    cost.critical_path_ms = ReferenceCriticalPathMs(workload, per_op_ms);
    return cost;
}

/**
 * Checks every planned execution path against the legacy reference:
 * serial, 1-thread pool, 8-thread pool, memoized (twice, so the second
 * pass replays hits), and the PlanCache hot path (cold then cached).
 */
void
CheckAllPaths(const Accelerator& accel, const NerfWorkload& workload,
              const FrameCost& reference, const std::string& label)
{
    const FramePlan plan = FramePlanner::Compile(accel, workload);
    ExpectBitIdentical(plan.Execute(), reference, label + " serial");
    ExpectBitIdentical(accel.RunWorkload(workload), reference,
                       label + " RunWorkload");

    ThreadPool pool1(1);
    ThreadPool pool8(8);
    ExpectBitIdentical(plan.Execute(&pool1), reference, label + " 1-thread");
    ExpectBitIdentical(plan.Execute(&pool8), reference, label + " 8-thread");

    GemmMemo memo;
    ExpectBitIdentical(plan.Execute(&pool8, &memo), reference,
                       label + " memo cold");
    ExpectBitIdentical(plan.Execute(nullptr, &memo), reference,
                       label + " memo replay");
    // Identical ops (e.g. a chain of equal hidden layers) share one memo
    // entry even within the cold pass: misses = distinct (config, shape)
    // keys, and both passes together issue two lookups per engine op.
    EXPECT_EQ(memo.misses(), memo.size()) << label;
    EXPECT_EQ(memo.hits() + memo.misses(), 2 * plan.engine_op_count())
        << label;
    EXPECT_LE(memo.size(), plan.engine_op_count()) << label;

    PlanCache cache;
    ExpectBitIdentical(cache.Run(accel, workload, &pool8), reference,
                       label + " cache cold");
    ExpectBitIdentical(cache.Run(accel, workload), reference,
                       label + " cache replay");
    EXPECT_EQ(cache.stats().plan_misses, 1u) << label;
    EXPECT_EQ(cache.stats().frame_hits, 1u) << label;
}

TEST(PlanParity, FlexNeRFerAllModelsAllPrecisions)
{
    for (Precision precision : kAllPrecisions) {
        FlexNeRFerModel::Config config;
        config.precision = precision;
        const FlexNeRFerModel model(config);
        for (const std::string& name : AllModelNames()) {
            const NerfWorkload w = BuildWorkload(name);
            CheckAllPaths(model, w, LegacyFlexNeRFer(model, w),
                          model.name() + " " + name);
        }
    }
}

TEST(PlanParity, FlexNeRFerAblationsAndPrunedScenes)
{
    // Non-default dataflows, disabled sparsity/codec, and pruned or
    // complex scenes exercise every lowering decision the planner makes.
    WorkloadParams pruned;
    pruned.weight_prune_ratio = 0.5;
    pruned.scene_complexity = 1.3;

    std::vector<FlexNeRFerModel::Config> configs(4);
    configs[1].noc_style = NocStyle::kBenes;
    configs[2].support_sparsity = false;
    configs[3].use_flex_codec = false;
    for (const auto& config : configs) {
        const FlexNeRFerModel model(config);
        const NerfWorkload w = BuildWorkload("Instant-NGP", pruned);
        CheckAllPaths(model, w, LegacyFlexNeRFer(model, w),
                      model.name() + " ablation Instant-NGP");
    }
}

TEST(PlanParity, NeuRexAllModels)
{
    const NeuRexModel model;
    for (const std::string& name : AllModelNames()) {
        const NerfWorkload w = BuildWorkload(name);
        CheckAllPaths(model, w, LegacyNeuRex(model, w), "NeuRex " + name);
    }
    // Structured pruning must stay invisible to the dense engine.
    WorkloadParams pruned;
    pruned.weight_prune_ratio = 0.5;
    const NerfWorkload w = BuildWorkload("NeRF", pruned);
    CheckAllPaths(model, w, LegacyNeuRex(model, w), "NeuRex pruned NeRF");
}

TEST(PlanParity, GpuAllModelsBothBoards)
{
    for (const GpuModel& model :
         {GpuModel::Rtx2080Ti(), GpuModel::XavierNx()}) {
        for (const std::string& name : AllModelNames()) {
            const NerfWorkload w = BuildWorkload(name);
            CheckAllPaths(model, w, LegacyGpu(model, w),
                          model.name() + " " + name);
        }
    }
}

}  // namespace
}  // namespace flexnerfer
