/**
 * @file
 * Unit tests for the plan layer: FramePlan structure and determinism,
 * GemmMemo, PlanCache (including concurrent hit/miss stress and
 * fingerprint-collision freedom), and the MAC-weighted FrameCost sum.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "accel/flexnerfer.h"
#include "accel/gpu_model.h"
#include "accel/neurex.h"
#include "models/workload.h"
#include "plan/frame_plan.h"
#include "plan/frame_planner.h"
#include "plan/gemm_memo.h"
#include "plan/plan_cache.h"
#include "runtime/batch_session.h"
#include "runtime/sweep_runner.h"
#include "runtime/thread_pool.h"
#include "frame_cost_matchers.h"

namespace flexnerfer {
namespace {

TEST(FrameCost, SumCombinesUtilizationMacWeighted)
{
    FrameCost a;
    a.gemm_utilization = 0.8;
    a.gemm_macs = 3e9;
    FrameCost b;
    b.gemm_utilization = 0.2;
    b.gemm_macs = 1e9;
    a += b;
    EXPECT_DOUBLE_EQ(a.gemm_utilization, (0.8 * 3e9 + 0.2 * 1e9) / 4e9);
    EXPECT_DOUBLE_EQ(a.gemm_macs, 4e9);
    // Adding a cost with no GEMM work (e.g. a GPU frame) keeps the
    // average instead of dropping or diluting it.
    a += FrameCost{};
    EXPECT_DOUBLE_EQ(a.gemm_utilization, 0.65);
}

TEST(FramePlan, ResolvesEveryOpAtCompileTime)
{
    const FlexNeRFerModel model;
    const NerfWorkload w = BuildWorkload("Instant-NGP");
    const FramePlan plan = FramePlanner::Compile(model, w);

    ASSERT_EQ(plan.ops().size(), w.ops.size());
    EXPECT_EQ(plan.workload_name(), "Instant-NGP");
    EXPECT_GT(plan.engine_op_count(), 0u);
    for (std::size_t i = 0; i < w.ops.size(); ++i) {
        const PlannedOp& op = plan.ops()[i];
        EXPECT_EQ(op.kind, w.ops[i].kind);
        EXPECT_EQ(op.name, w.ops[i].name);
        if (op.kind == OpKind::kGemm) {
            EXPECT_TRUE(op.uses_engine);
            // Decisions are resolved, not deferred: the engine config
            // carries the model's precision/dataflow, and the memo key
            // is prebuilt.
            EXPECT_EQ(op.engine_config.precision,
                      model.config().precision);
            EXPECT_EQ(op.engine_config.noc_style,
                      model.config().noc_style);
            EXPECT_FALSE(op.memo_key.empty());
        } else {
            EXPECT_FALSE(op.uses_engine);
            EXPECT_EQ(op.fixed.cost.latency_ms, op.fixed.cost.gemm_ms +
                                                    op.fixed.cost.encoding_ms +
                                                    op.fixed.cost.other_ms);
        }
    }
}

TEST(FramePlan, ExecuteDeterministicAcrossThreadCounts)
{
    // The SweepRunner contract extended to intra-frame parallelism:
    // serial, 1-thread, 4-thread, and 8-thread executions of one plan
    // are bit-identical, run after run.
    const FlexNeRFerModel model;
    const FramePlan plan =
        FramePlanner::Compile(model, BuildWorkload("NeRF"));
    const FrameCost reference = plan.Execute();
    for (int threads : {1, 4, 8}) {
        ThreadPool pool(threads);
        ExpectBitIdentical(plan.Execute(&pool), reference);
        ExpectBitIdentical(plan.Execute(&pool), reference);
    }
}

TEST(GemmMemo, HitsReplayIdenticalResults)
{
    GemmMemo memo;
    GemmEngineConfig config;
    config.compute_output = false;
    const GemmEngine engine(config);
    const GemmShape shape{4096, 256, 256, 0.55, 1.0, 0.0};
    std::string key;
    AppendFingerprint(config, &key);
    AppendFingerprint(shape, &key);

    const GemmResult cold = memo.RunFromShape(engine, shape, key);
    const GemmResult warm = memo.RunFromShape(engine, shape, key);
    EXPECT_EQ(memo.misses(), 1u);
    EXPECT_EQ(memo.hits(), 1u);
    EXPECT_EQ(cold.latency_ms, warm.latency_ms);
    EXPECT_EQ(cold.cycles, warm.cycles);
    EXPECT_EQ(cold.energy.TotalPj(), warm.energy.TotalPj());
    EXPECT_EQ(cold.useful_macs, warm.useful_macs);
}

TEST(PlanCache, WorkloadsDifferingInOneOpDensityNeverSharePlans)
{
    // The fingerprint is an injective encoding, so two workloads that
    // differ only in a single op's density cannot collide into one
    // cache entry (a hash could; a fingerprint cannot).
    NerfWorkload a = BuildWorkload("NeRF");
    NerfWorkload b = a;
    for (WorkloadOp& op : b.ops) {
        if (op.kind == OpKind::kGemm && op.gemm.density_a < 1.0) {
            op.gemm.density_a *= 0.999;
            break;
        }
    }
    EXPECT_NE(WorkloadFingerprint(a), WorkloadFingerprint(b));

    const FlexNeRFerModel model;
    PlanCache cache;
    const auto plan_a = cache.Get(model, a);
    const auto plan_b = cache.Get(model, b);
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_NE(plan_a.get(), plan_b.get());
    EXPECT_EQ(cache.stats().plan_misses, 2u);
    EXPECT_EQ(cache.stats().plan_hits, 0u);

    // A coarser density change shows the field is load-bearing (the
    // 0.999 nudge above sits below the wave-quantization granularity,
    // which is exactly why sharing plans across it would be wrong to
    // rely on and must come from the fingerprint, not the cost).
    NerfWorkload c = a;
    for (WorkloadOp& op : c.ops) {
        if (op.kind == OpKind::kGemm && op.gemm.density_a < 1.0) {
            op.gemm.density_a *= 0.5;
            break;
        }
    }
    const auto plan_c = cache.Get(model, c);
    EXPECT_NE(plan_a->Execute().latency_ms, plan_c->Execute().latency_ms);

    // Same workload, different model config: also distinct entries.
    FlexNeRFerModel::Config int4;
    int4.precision = Precision::kInt4;
    cache.Get(FlexNeRFerModel(int4), a);
    EXPECT_EQ(cache.size(), 4u);
}

TEST(PlanCache, RepeatedGetsHitAndShareOnePlan)
{
    const NeuRexModel model;
    const NerfWorkload w = BuildWorkload("TensoRF");
    PlanCache cache;
    const auto first = cache.Get(model, w);
    const auto second = cache.Get(model, w);
    EXPECT_EQ(first.get(), second.get());
    EXPECT_EQ(cache.stats().plan_hits, 1u);
    EXPECT_EQ(cache.stats().plan_misses, 1u);

    // A second instance with an identical config keys to the same plan:
    // the cache is keyed by configuration, not object identity.
    const NeuRexModel clone;
    EXPECT_EQ(cache.Get(clone, w).get(), first.get());
}

TEST(PlanCache, RunReplaysBitIdenticalFrames)
{
    const FlexNeRFerModel model;
    const NerfWorkload w = BuildWorkload("Mip-NeRF");
    const FrameCost reference = model.RunWorkload(w);

    ThreadPool pool(4);
    PlanCache cache;
    ExpectBitIdentical(cache.Run(model, w, &pool), reference);
    ExpectBitIdentical(cache.Run(model, w, &pool), reference);
    ExpectBitIdentical(cache.Run(model, w), reference);
    EXPECT_EQ(cache.stats().plan_misses, 1u);
    EXPECT_EQ(cache.stats().frame_hits, 2u);
}

TEST(PlanCache, PreparedFramesReplayBitIdentically)
{
    const FlexNeRFerModel model;
    const NeuRexModel neurex;
    const NerfWorkload w = BuildWorkload("KiloNeRF");
    PlanCache cache;

    const PlanCache::PreparedFrame flex_frame = cache.Prepare(model, w);
    const PlanCache::PreparedFrame neurex_frame = cache.Prepare(neurex, w);
    // Preparing again returns a new handle to the same shared entry.
    const PlanCache::PreparedFrame again = cache.Prepare(model, w);
    EXPECT_EQ(cache.size(), 2u);

    ThreadPool pool(4);
    ExpectBitIdentical(cache.Run(flex_frame, &pool), model.RunWorkload(w));
    ExpectBitIdentical(cache.Run(flex_frame), model.RunWorkload(w));
    ExpectBitIdentical(cache.Run(again), model.RunWorkload(w));
    ExpectBitIdentical(cache.Run(neurex_frame), neurex.RunWorkload(w));
    // Keyed and prepared paths share one result memo.
    ExpectBitIdentical(cache.Run(model, w), model.RunWorkload(w));
    EXPECT_EQ(cache.stats().frame_hits, 3u);

    // Prepared frames also drive the serving front-end.
    BatchSession session(model, pool, &cache);
    const BatchTicket ticket = session.EnqueueFrame(flex_frame);
    ExpectBitIdentical(session.Wait(ticket), model.RunWorkload(w));
}

TEST(PlanCache, ConcurrentHitMissStress)
{
    // Hammer one cache from many pool workers with a mix of workloads,
    // models, and configs: every result must match the serial reference,
    // and the bookkeeping must balance (one outcome counted per call).
    ThreadPool pool(8);
    PlanCache cache;

    const FlexNeRFerModel flex16;
    FlexNeRFerModel::Config c4;
    c4.precision = Precision::kInt4;
    const FlexNeRFerModel flex4(c4);
    const NeuRexModel neurex;
    const GpuModel gpu;
    const std::vector<const Accelerator*> accels = {&flex16, &flex4,
                                                    &neurex, &gpu};

    std::vector<NerfWorkload> workloads;
    for (const std::string& name : AllModelNames()) {
        workloads.push_back(BuildWorkload(name));
    }

    std::vector<std::vector<FrameCost>> references(accels.size());
    for (std::size_t a = 0; a < accels.size(); ++a) {
        for (const NerfWorkload& w : workloads) {
            references[a].push_back(accels[a]->RunWorkload(w));
        }
    }

    constexpr int kRounds = 6;
    const auto n = static_cast<std::int64_t>(
        kRounds * accels.size() * workloads.size());
    std::atomic<int> mismatches{0};
    pool.ParallelFor(n, [&](std::int64_t i) {
        const auto a = static_cast<std::size_t>(i) % accels.size();
        const auto w =
            (static_cast<std::size_t>(i) / accels.size()) % workloads.size();
        const FrameCost got = cache.Run(*accels[a], workloads[w], &pool);
        const FrameCost& want = references[a][w];
        if (got.latency_ms != want.latency_ms ||
            got.energy_mj != want.energy_mj ||
            got.gemm_utilization != want.gemm_utilization) {
            mismatches.fetch_add(1);
        }
    });
    EXPECT_EQ(mismatches.load(), 0);
    EXPECT_EQ(cache.size(), accels.size() * workloads.size());
    const PlanCache::Stats stats = cache.stats();
    // Every keyed Run does exactly one plan lookup; racing misses may
    // compile a duplicate plan, but only successful inserts count as
    // misses, so misses equal the entry count exactly.
    EXPECT_EQ(stats.plan_hits + stats.plan_misses,
              static_cast<std::uint64_t>(n));
    EXPECT_EQ(stats.plan_misses, accels.size() * workloads.size());
    EXPECT_GT(stats.frame_hits, 0u);
    EXPECT_LE(stats.frame_hits, static_cast<std::uint64_t>(n));
}

TEST(PlanCache, BoundedCacheEvictsLruAndRecompilesByteIdentically)
{
    const FlexNeRFerModel model;
    const NerfWorkload w1 = BuildWorkload("NeRF");
    const NerfWorkload w2 = BuildWorkload("KiloNeRF");
    const NerfWorkload w3 = BuildWorkload("TensoRF");

    PlanCache cache(2);
    EXPECT_EQ(cache.capacity(), 2u);
    const FrameCost first = cache.Run(model, w1);
    cache.Run(model, w2);
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.stats().evictions, 0u);

    // A third distinct frame evicts the least-recently-used entry (w1).
    cache.Run(model, w3);
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.stats().evictions, 1u);

    // The evicted pair recompiles on its next keyed lookup — counted as
    // a miss — into a byte-identical plan and frame result: compilation
    // is a pure function of the key, so eviction can never change what
    // a request observes, only what it costs.
    const std::uint64_t misses_before = cache.stats().plan_misses;
    ExpectBitIdentical(cache.Run(model, w1), first);
    EXPECT_EQ(cache.stats().plan_misses, misses_before + 1);
    EXPECT_EQ(cache.stats().evictions, 2u);  // w1's return evicted w2
}

TEST(PlanCache, KeyedHitsRefreshRecency)
{
    const FlexNeRFerModel model;
    const NerfWorkload w1 = BuildWorkload("NeRF");
    const NerfWorkload w2 = BuildWorkload("KiloNeRF");
    const NerfWorkload w3 = BuildWorkload("TensoRF");

    PlanCache cache(2);
    const auto plan1 = cache.Get(model, w1);
    cache.Get(model, w2);
    // Touching w1 makes w2 the LRU entry, so inserting w3 evicts w2.
    cache.Get(model, w1);
    cache.Get(model, w3);
    EXPECT_EQ(cache.stats().evictions, 1u);
    const std::uint64_t hits_before = cache.stats().plan_hits;
    EXPECT_EQ(cache.Get(model, w1).get(), plan1.get());  // still cached
    EXPECT_EQ(cache.stats().plan_hits, hits_before + 1);
}

TEST(PlanCache, PreparedFramesPinEntriesAcrossEviction)
{
    const FlexNeRFerModel model;
    const NerfWorkload w1 = BuildWorkload("NeRF");
    const NerfWorkload w2 = BuildWorkload("KiloNeRF");

    PlanCache cache(1);
    const PlanCache::PreparedFrame frame = cache.Prepare(model, w1);
    const FrameCost reference = cache.Run(frame);

    // Inserting w2 evicts w1 from the key table...
    cache.Run(model, w2);
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(cache.stats().evictions, 1u);

    // ...but the pinned handle still replays from the memoized result
    // (a frame hit, not a recompile), exactly as before eviction.
    const std::uint64_t frame_hits_before = cache.stats().frame_hits;
    const std::uint64_t misses_before = cache.stats().plan_misses;
    ExpectBitIdentical(cache.Run(frame), reference);
    EXPECT_EQ(cache.stats().frame_hits, frame_hits_before + 1);
    EXPECT_EQ(cache.stats().plan_misses, misses_before);
}

TEST(PlanCache, UnboundedByDefaultNeverEvicts)
{
    const FlexNeRFerModel model;
    PlanCache cache;
    EXPECT_EQ(cache.capacity(), 0u);
    for (const std::string& name : AllModelNames()) {
        cache.Get(model, BuildWorkload(name));
    }
    EXPECT_EQ(cache.size(), AllModelNames().size());
    EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(PlanCache, ServesSweepRunnerAndBatchSession)
{
    // One shared cache behind both runtime front-ends: outcomes stay
    // identical to the uncached paths.
    ThreadPool pool(4);
    PlanCache cache;
    const FlexNeRFerModel model;
    const NerfWorkload w = BuildWorkload("Instant-NGP");
    const FrameCost reference = model.RunWorkload(w);

    BatchSession session(model, pool, &cache);
    for (int i = 0; i < 8; ++i) session.EnqueueFrame(w);
    for (const FrameCost& cost : session.WaitAll()) {
        ExpectBitIdentical(cost, reference);
    }
    EXPECT_GT(cache.stats().frame_hits, 0u);

    // A cached sweep revisiting the same point replays identically.
    SweepPoint p;
    p.model = "Instant-NGP";
    const SweepRunner cached(pool, &cache);
    const SweepRunner uncached(pool);
    const auto c = cached.Run({p, p});
    const auto u = uncached.Run({p});
    ASSERT_EQ(c.size(), 2u);
    ExpectBitIdentical(c[0].per_model[0], u[0].per_model[0]);
    ExpectBitIdentical(c[1].per_model[0], u[0].per_model[0]);
    ExpectBitIdentical(c[0].per_model[0], reference);
}

}  // namespace
}  // namespace flexnerfer
