/**
 * @file
 * Deterministic chaos drills for the cross-host cluster: a seeded
 * sweep of kill / partition / loss fault schedules, each asserting the
 * conservation identities (every ticket resolves exactly once, shard
 * admissions reconcile with router submissions via replays and
 * transport failures, the merged latency histogram's count equals the
 * lifetime accepted count) and thread-count invariance (threads 1 and
 * 8 produce field-identical verdicts and telemetry for the same seed),
 * plus wire-format death tests: magic / version / type / size
 * mismatches are Fatal, never a silent misparse.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "serve/cluster_controller.h"
#include "serve/transport.h"
#include "serve/wire.h"

namespace flexnerfer {
namespace {

SweepPoint
FlexScene(const std::string& model)
{
    SweepPoint spec;
    spec.backend = Backend::kFlexNeRFer;
    spec.precision = Precision::kInt8;
    spec.model = model;
    return spec;
}

/** Cheap models only: the drills care about routing, not rendering. */
const std::vector<std::string>&
ChaosModels()
{
    static const std::vector<std::string> models = {
        "Instant-NGP", "KiloNeRF", "NSVF", "TensoRF", "IBRNet"};
    return models;
}

/** Fixed overloaded schedule, a pure function of @p seed. */
std::vector<SceneRequest>
ChaosSchedule(std::uint64_t seed, const std::vector<double>& est_ms,
              double mean_est_ms, std::size_t requests)
{
    Rng rng(seed);
    std::vector<SceneRequest> schedule;
    double arrival = 0.0;
    const double mean_interarrival = mean_est_ms / 3.0;  // overloaded
    for (std::size_t i = 0; i < requests; ++i) {
        arrival += -mean_interarrival *
                   std::log(1.0 - rng.Uniform(0.0, 1.0));
        const auto scene = static_cast<std::size_t>(rng.UniformInt(
            0, static_cast<std::int64_t>(est_ms.size()) - 1));
        SceneRequest request;
        request.scene = ChaosModels()[scene];
        request.arrival_ms = arrival;
        request.priority = static_cast<int>(rng.UniformInt(0, 2));
        request.deadline_ms = 1.5 * est_ms[scene] +
                              mean_est_ms * rng.Uniform(0.0, 4.0);
        schedule.push_back(std::move(request));
    }
    return schedule;
}

enum class FaultPlan { kKill, kPartition, kLoss };

/** The fault schedule: a pure function of (seed, plan, span). */
void
ScheduleFaults(ClusterController& controller, FaultPlan plan,
               std::uint64_t seed, double span_ms, std::size_t shards)
{
    switch (plan) {
        case FaultPlan::kKill: {
            // One death a third in, a second (possibly redundant —
            // the controller skips unsafe kills) two thirds in.
            FaultEvent death;
            death.kind = FaultEvent::Kind::kShardDeath;
            death.link = seed % shards;
            death.start_ms = span_ms / 3.0;
            controller.ScheduleFault(death);
            death.link = (seed / 7) % shards;
            death.start_ms = 2.0 * span_ms / 3.0;
            controller.ScheduleFault(death);
            break;
        }
        case FaultPlan::kPartition: {
            FaultEvent partition;
            partition.kind = FaultEvent::Kind::kPartition;
            partition.link = seed % shards;
            partition.start_ms = span_ms / 4.0;
            partition.end_ms = span_ms / 2.0;
            controller.ScheduleFault(partition);
            break;
        }
        case FaultPlan::kLoss: {
            FaultEvent loss;
            loss.kind = FaultEvent::Kind::kLoss;
            loss.link = SimTransport::kAllLinks;
            loss.start_ms = span_ms / 5.0;
            loss.end_ms = 3.0 * span_ms / 5.0;
            loss.magnitude = 0.55;
            controller.ScheduleFault(loss);
            FaultEvent spike;
            spike.kind = FaultEvent::Kind::kDelaySpike;
            spike.link = (seed + 1) % shards;
            spike.start_ms = 0.0;
            spike.end_ms = span_ms;
            spike.magnitude = 0.2;
            controller.ScheduleFault(spike);
            break;
        }
    }
}

struct ChaosRun {
    std::vector<ClusterRenderResult> results;
    ClusterStats stats;
    std::uint64_t transport_failed_messages = 0;
};

ChaosRun
RunChaos(std::uint64_t seed, FaultPlan plan, int threads_per_shard,
         std::size_t requests = 120)
{
    ClusterControllerConfig config;
    config.cluster.shards = 4;
    config.cluster.threads_per_shard = threads_per_shard;
    config.cluster.admission.max_queue_depth = 8;
    config.transport_seed = seed;
    ClusterController controller(config);

    std::vector<double> est_ms;
    double mean = 0.0;
    for (const std::string& model : ChaosModels()) {
        controller.RegisterScene(model, FlexScene(model));
    }
    for (const std::string& model : ChaosModels()) {
        est_ms.push_back(EstimatedServiceMs(controller.WarmScene(model)));
        mean += est_ms.back();
    }
    mean /= static_cast<double>(est_ms.size());

    const std::vector<SceneRequest> schedule =
        ChaosSchedule(seed, est_ms, mean, requests);
    const double span_ms = schedule.back().arrival_ms;
    ScheduleFaults(controller, plan, seed, span_ms, 4);

    for (const SceneRequest& request : schedule) {
        controller.Submit(request);
    }
    ChaosRun run;
    run.results = controller.WaitAll();
    run.stats = controller.Snapshot();
    run.transport_failed_messages = controller.transport().stats().failed;
    return run;
}

/** The conservation identities every drill must satisfy. */
void
CheckConservation(const ChaosRun& run, std::size_t requests)
{
    ASSERT_EQ(run.results.size(), requests);
    std::uint64_t completed = 0, shed = 0, rejected = 0, failed = 0;
    std::uint64_t replayed = 0;
    for (const ClusterRenderResult& r : run.results) {
        switch (r.result.status) {
            case RequestStatus::kCompleted: ++completed; break;
            case RequestStatus::kShedDeadline: ++shed; break;
            case RequestStatus::kRejectedQueueFull: ++rejected; break;
            case RequestStatus::kFailedTransport: ++failed; break;
        }
        if (r.replayed) ++replayed;
        // A transport failure never carries a rendered result and is
        // flagged consistently.
        EXPECT_EQ(r.transport_failed,
                  r.result.status == RequestStatus::kFailedTransport);
    }
    // Every ticket resolved exactly once, into exactly one status.
    EXPECT_EQ(completed + shed + rejected + failed, requests);

    const ClusterStats& stats = run.stats;
    EXPECT_EQ(stats.cluster_submitted, requests);
    EXPECT_EQ(stats.completed, completed);
    EXPECT_EQ(stats.shed_deadline, shed);
    EXPECT_EQ(stats.rejected_queue_full, rejected);
    EXPECT_EQ(stats.transport_failures, failed);
    EXPECT_EQ(stats.replayed, replayed);
    // Shard-level admissions reconcile with router submissions: a
    // replayed ticket admits twice, a transport failure never admits.
    EXPECT_EQ(stats.submitted,
              stats.cluster_submitted - stats.transport_failures +
                  stats.replayed);
    // The merged histogram folds every epoch, dead shards included:
    // its exact count must equal the lifetime accepted count.
    EXPECT_EQ(stats.latency_samples, stats.accepted);
    EXPECT_EQ(stats.completed, stats.accepted);
    // Live per-shard rows keep the prepared-path invariant; dead rows
    // are zeroed.
    for (const ShardTelemetry& shard : stats.per_shard) {
        if (shard.alive) {
            EXPECT_EQ(shard.service.cache.frame_hits,
                      shard.service.accepted);
        } else {
            EXPECT_EQ(shard.service.submitted, 0u);
            EXPECT_EQ(shard.service.accepted, 0u);
        }
    }
    EXPECT_EQ(run.transport_failed_messages, failed);
}

void
ExpectIdenticalRuns(const ChaosRun& a, const ChaosRun& b)
{
    ASSERT_EQ(a.results.size(), b.results.size());
    for (std::size_t i = 0; i < a.results.size(); ++i) {
        const ClusterRenderResult& ra = a.results[i];
        const ClusterRenderResult& rb = b.results[i];
        EXPECT_EQ(ra.result.status, rb.result.status) << "request " << i;
        EXPECT_EQ(ra.result.scene, rb.result.scene) << "request " << i;
        EXPECT_EQ(ra.result.latency_ms, rb.result.latency_ms)
            << "request " << i;
        EXPECT_EQ(ra.shard, rb.shard) << "request " << i;
        EXPECT_EQ(ra.home_shard, rb.home_shard) << "request " << i;
        EXPECT_EQ(ra.spilled, rb.spilled) << "request " << i;
        EXPECT_EQ(ra.spill_surcharge_ms, rb.spill_surcharge_ms)
            << "request " << i;
        EXPECT_EQ(ra.replayed, rb.replayed) << "request " << i;
        EXPECT_EQ(ra.transport_failed, rb.transport_failed)
            << "request " << i;
        EXPECT_EQ(ra.rpc_delay_ms, rb.rpc_delay_ms) << "request " << i;
    }
    EXPECT_EQ(a.stats.submitted, b.stats.submitted);
    EXPECT_EQ(a.stats.accepted, b.stats.accepted);
    EXPECT_EQ(a.stats.rejected_queue_full, b.stats.rejected_queue_full);
    EXPECT_EQ(a.stats.shed_deadline, b.stats.shed_deadline);
    EXPECT_EQ(a.stats.spilled, b.stats.spilled);
    EXPECT_EQ(a.stats.transport_failures, b.stats.transport_failures);
    EXPECT_EQ(a.stats.replayed, b.stats.replayed);
    EXPECT_EQ(a.stats.killed_shards, b.stats.killed_shards);
    EXPECT_EQ(a.stats.p50_ms, b.stats.p50_ms);
    EXPECT_EQ(a.stats.p99_ms, b.stats.p99_ms);
    EXPECT_EQ(a.stats.mean_ms, b.stats.mean_ms);
    EXPECT_EQ(a.stats.latency_sum_ms, b.stats.latency_sum_ms);
    EXPECT_EQ(a.stats.makespan_ms, b.stats.makespan_ms);
    EXPECT_EQ(a.stats.utilization, b.stats.utilization);
    EXPECT_EQ(a.transport_failed_messages, b.transport_failed_messages);
}

// ---------------------------------------------------------------------
// The seeded sweep: 10 seeds x {kill, partition, loss}.
// ---------------------------------------------------------------------

class ChaosSweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, FaultPlan>>
{};

TEST_P(ChaosSweep, ConservationHoldsAndThreadsAreInvariant)
{
    const std::uint64_t seed = std::get<0>(GetParam());
    const FaultPlan plan = std::get<1>(GetParam());

    const ChaosRun single = RunChaos(seed, plan, 1);
    CheckConservation(single, 120);

    const ChaosRun wide = RunChaos(seed, plan, 8);
    CheckConservation(wide, 120);
    ExpectIdenticalRuns(single, wide);

    // Kill plans must actually exercise the replay path for at least
    // one seed-independent guarantee: the first death always lands
    // (the cluster starts with 4 live shards).
    if (plan == FaultPlan::kKill) {
        EXPECT_GE(single.stats.killed_shards, 1u);
    }
    // Loss plans must actually drop traffic terminally for the
    // conservation identity to be load-bearing.
    if (plan == FaultPlan::kLoss) {
        EXPECT_GE(single.stats.transport_failures, 1u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    SeededFaults, ChaosSweep,
    ::testing::Combine(::testing::Values(11u, 12u, 13u, 14u, 15u, 16u,
                                         17u, 18u, 19u, 20u),
                       ::testing::Values(FaultPlan::kKill,
                                         FaultPlan::kPartition,
                                         FaultPlan::kLoss)),
    [](const ::testing::TestParamInfo<ChaosSweep::ParamType>& info) {
        const char* plan = "";
        switch (std::get<1>(info.param)) {
            case FaultPlan::kKill: plan = "Kill"; break;
            case FaultPlan::kPartition: plan = "Partition"; break;
            case FaultPlan::kLoss: plan = "Loss"; break;
        }
        return std::string(plan) + "Seed" +
               std::to_string(std::get<0>(info.param));
    });

// ---------------------------------------------------------------------
// Quick non-parameterized drills (the smoke slice).
// ---------------------------------------------------------------------

TEST(ChaosQuick, KillReplaysInFlightTicketsExactlyOnce)
{
    const ChaosRun run = RunChaos(11u, FaultPlan::kKill, 2);
    CheckConservation(run, 120);
    EXPECT_GE(run.stats.killed_shards, 1u);
    // Replays re-admit on a live shard: every replayed ticket still
    // resolved, and none resolved twice (conservation above), so the
    // replay count is exactly the number of flagged results.
    std::uint64_t flagged = 0;
    for (const ClusterRenderResult& r : run.results) {
        if (r.replayed) {
            ++flagged;
            EXPECT_NE(r.result.status, RequestStatus::kFailedTransport);
        }
    }
    EXPECT_EQ(run.stats.replayed, flagged);
}

TEST(ChaosQuick, PartitionFailsRequestsTerminallyAndDeterministically)
{
    const ChaosRun run = RunChaos(13u, FaultPlan::kPartition, 2);
    CheckConservation(run, 120);
    // A partition outlasting the retry budget is a terminal failure:
    // the partitioned link's home traffic dies on the wire.
    EXPECT_GE(run.stats.transport_failures, 1u);
    for (const ClusterRenderResult& r : run.results) {
        if (r.transport_failed) {
            EXPECT_EQ(r.result.latency_ms, 0.0);
            EXPECT_FALSE(r.replayed);
        }
    }
}

TEST(ChaosQuick, FaultFreeTransportMatchesInProcessCluster)
{
    // The wire layer is verdict-transparent without faults: the same
    // schedule through a transport-attached cluster and a plain one
    // produces identical verdicts and telemetry (rpc_delay_ms aside).
    ClusterConfig plain_config;
    plain_config.shards = 4;
    plain_config.threads_per_shard = 2;
    plain_config.admission.max_queue_depth = 8;
    ShardedRenderService plain(plain_config);

    ClusterControllerConfig wired_config;
    wired_config.cluster = plain_config;
    ClusterController wired(wired_config);

    std::vector<double> est_ms;
    double mean = 0.0;
    for (const std::string& model : ChaosModels()) {
        plain.RegisterScene(model, FlexScene(model));
        wired.RegisterScene(model, FlexScene(model));
    }
    for (const std::string& model : ChaosModels()) {
        est_ms.push_back(EstimatedServiceMs(plain.WarmScene(model)));
        wired.WarmScene(model);
        mean += est_ms.back();
    }
    mean /= static_cast<double>(est_ms.size());

    for (const SceneRequest& request :
         ChaosSchedule(42u, est_ms, mean, 100)) {
        plain.Submit(request);
        wired.Submit(request);
    }
    const std::vector<ClusterRenderResult> a = plain.WaitAll();
    const std::vector<ClusterRenderResult> b = wired.WaitAll();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].result.status, b[i].result.status);
        EXPECT_EQ(a[i].result.latency_ms, b[i].result.latency_ms);
        EXPECT_EQ(a[i].shard, b[i].shard);
        EXPECT_EQ(a[i].spilled, b[i].spilled);
        EXPECT_EQ(b[i].rpc_delay_ms > 0.0, true) << "request " << i;
    }
    EXPECT_EQ(plain.Snapshot().accepted, wired.Snapshot().accepted);
    EXPECT_EQ(wired.Snapshot().transport_failures, 0u);
}

// ---------------------------------------------------------------------
// Wire-format death tests: version skew is Fatal, never a misparse.
// ---------------------------------------------------------------------

SceneRequest
WireRequest()
{
    SceneRequest request;
    request.scene = "ngp";
    request.tier = 1;
    request.priority = 2;
    request.deadline_ms = 7.5;
    request.arrival_ms = 123.25;
    return request;
}

TEST(WireFormat, RoundTripsEveryField)
{
    const SceneRequest request = WireRequest();
    const SceneRequest back =
        wire::DecodeSceneRequest(wire::EncodeSceneRequest(request));
    EXPECT_EQ(back.scene, request.scene);
    EXPECT_EQ(back.tier, request.tier);
    EXPECT_EQ(back.priority, request.priority);
    EXPECT_EQ(back.deadline_ms, request.deadline_ms);
    EXPECT_EQ(back.arrival_ms, request.arrival_ms);

    wire::WireTicket ticket;
    ticket.ticket = 0xDEADBEEFCAFEull;
    ticket.shard = 3;
    const wire::WireTicket ticket_back =
        wire::DecodeTicket(wire::EncodeTicket(ticket));
    EXPECT_EQ(ticket_back.ticket, ticket.ticket);
    EXPECT_EQ(ticket_back.shard, ticket.shard);

    wire::WireSnapshot snapshot;
    snapshot.shard = 2;
    snapshot.submitted = 10;
    snapshot.accepted = 8;
    snapshot.rejected_queue_full = 1;
    snapshot.shed_deadline = 1;
    snapshot.completed = 8;
    snapshot.busy_ms = 99.5;
    snapshot.p50_latency_ms = 3.25;
    snapshot.p99_latency_ms = 9.75;
    const wire::WireSnapshot snap_back =
        wire::DecodeSnapshot(wire::EncodeSnapshot(snapshot));
    EXPECT_EQ(snap_back.shard, snapshot.shard);
    EXPECT_EQ(snap_back.submitted, snapshot.submitted);
    EXPECT_EQ(snap_back.accepted, snapshot.accepted);
    EXPECT_EQ(snap_back.busy_ms, snapshot.busy_ms);
    EXPECT_EQ(snap_back.p99_latency_ms, snapshot.p99_latency_ms);
}

TEST(WireFormatDeath, RejectsWrongMagic)
{
    std::string frame = wire::EncodeSceneRequest(WireRequest());
    frame[0] = 'X';
    EXPECT_DEATH(wire::DecodeSceneRequest(frame), "wire");
}

TEST(WireFormatDeath, RejectsVersionSkew)
{
    std::string frame = wire::EncodeSceneRequest(WireRequest());
    frame[4] = static_cast<char>(wire::kVersion + 1);  // version u16 LE
    EXPECT_DEATH(wire::DecodeSceneRequest(frame), "wire");
}

TEST(WireFormatDeath, RejectsWrongMessageType)
{
    wire::WireTicket ticket;
    ticket.ticket = 7;
    const std::string frame = wire::EncodeTicket(ticket);
    EXPECT_DEATH(wire::DecodeSceneRequest(frame), "wire");
}

TEST(WireFormatDeath, RejectsTruncatedFrame)
{
    std::string frame = wire::EncodeSceneRequest(WireRequest());
    frame.resize(frame.size() - 3);
    EXPECT_DEATH(wire::DecodeSceneRequest(frame), "wire");
}

TEST(WireFormatDeath, RejectsTrailingBytes)
{
    std::string frame = wire::EncodeSceneRequest(WireRequest());
    frame.push_back('\0');
    EXPECT_DEATH(wire::DecodeSceneRequest(frame), "wire");
}

TEST(WireFormatDeath, RejectsHeaderShorterThanFixedSize)
{
    const std::string frame = "FNRW";
    EXPECT_DEATH(wire::DecodeSceneRequest(frame), "wire");
}

}  // namespace
}  // namespace flexnerfer
