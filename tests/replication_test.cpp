/**
 * @file
 * Hot-scene replication tests: replica sets are a pure function of the
 * popularity census and the live shard set (two identical histories
 * derive identical sets, demotion clears them), power-of-two-choices
 * routing stays inside the replica set and never touches a dead
 * replica, the per-replica prepared-path invariants hold (frame hits ==
 * accepted solo, == dispatched batches when fusion is on), the
 * auto-refresh cadence fires on the configured submission count, and
 * the whole feature is thread-count invariant.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "serve/cluster.h"

namespace flexnerfer {
namespace {

SweepPoint
FlexScene(const std::string& model)
{
    SweepPoint spec;
    spec.backend = Backend::kFlexNeRFer;
    spec.precision = Precision::kInt8;
    spec.model = model;
    return spec;
}

const std::vector<std::string>&
Models()
{
    static const std::vector<std::string> models = {"Instant-NGP",
                                                    "KiloNeRF", "NSVF"};
    return models;
}

ClusterConfig
ReplicatedConfig(std::size_t factor, std::uint64_t refresh_every = 0,
                 int threads = 1)
{
    ClusterConfig config;
    config.shards = 4;
    config.threads_per_shard = threads;
    config.replication.top_k = 1;
    config.replication.factor = factor;
    config.replication.refresh_every = refresh_every;
    return config;
}

void
SetupScenes(ShardedRenderService& cluster)
{
    for (const std::string& model : Models()) {
        cluster.RegisterScene(model, FlexScene(model));
    }
    for (const std::string& model : Models()) cluster.WarmScene(model);
}

/** Submits @p count well-spaced requests for @p scene from @p start. */
void
SubmitSpaced(ShardedRenderService& cluster, const std::string& scene,
             std::size_t count, double start_ms, double gap_ms)
{
    for (std::size_t i = 0; i < count; ++i) {
        SceneRequest request;
        request.scene = scene;
        request.arrival_ms = start_ms + static_cast<double>(i) * gap_ms;
        cluster.Submit(request);
    }
}

TEST(Replication, ReplicaSetsArePureFunctionsOfTheCensus)
{
    // Two clusters with identical histories derive identical replica
    // sets: the census (submission counts) and the live set are the
    // only inputs.
    ShardedRenderService a(ReplicatedConfig(2));
    ShardedRenderService b(ReplicatedConfig(2));
    SetupScenes(a);
    SetupScenes(b);

    SubmitSpaced(a, "Instant-NGP", 6, 0.0, 50.0);
    SubmitSpaced(b, "Instant-NGP", 6, 0.0, 50.0);
    SubmitSpaced(a, "KiloNeRF", 2, 1.0, 50.0);
    SubmitSpaced(b, "KiloNeRF", 2, 1.0, 50.0);
    a.WaitAll();
    b.WaitAll();

    const std::vector<std::string> hot_a = a.RefreshReplication();
    const std::vector<std::string> hot_b = b.RefreshReplication();
    ASSERT_EQ(hot_a, hot_b);
    ASSERT_EQ(hot_a, std::vector<std::string>{"Instant-NGP"});

    // The replica set is the first `factor` live shards of the scene's
    // HRW rank — a deterministic prefix.
    const std::vector<std::size_t> replicas = a.ReplicasOf("Instant-NGP");
    ASSERT_EQ(replicas.size(), 2u);
    const std::vector<std::size_t> rank = a.router().Rank("Instant-NGP");
    EXPECT_EQ(replicas[0], rank[0]);
    EXPECT_EQ(replicas[1], rank[1]);
    EXPECT_EQ(replicas, b.ReplicasOf("Instant-NGP"));
    // Non-hot scenes hold no replica set.
    EXPECT_TRUE(a.ReplicasOf("KiloNeRF").empty());

    // Demotion: once another scene overtakes the census, the old hot
    // scene's replica set is cleared.
    SubmitSpaced(a, "KiloNeRF", 10, 1000.0, 50.0);
    a.WaitAll();
    const std::vector<std::string> hot_after = a.RefreshReplication();
    ASSERT_EQ(hot_after, std::vector<std::string>{"KiloNeRF"});
    EXPECT_TRUE(a.ReplicasOf("Instant-NGP").empty());
    EXPECT_EQ(a.ReplicasOf("KiloNeRF").size(), 2u);
}

TEST(Replication, P2cRoutesWithinTheReplicaSetAndBalances)
{
    ShardedRenderService cluster(ReplicatedConfig(2));
    SetupScenes(cluster);

    // Make Instant-NGP hot, then derive its replica set.
    SubmitSpaced(cluster, "Instant-NGP", 5, 0.0, 100.0);
    cluster.WaitAll();
    cluster.RefreshReplication();
    const std::vector<std::size_t> replicas =
        cluster.ReplicasOf("Instant-NGP");
    ASSERT_EQ(replicas.size(), 2u);
    const std::uint64_t p2c_before = cluster.Snapshot().p2c_routed;

    // A same-instant burst: p2c must spread it over both replicas
    // (the first keeps the home busy, the second probe wins on
    // completion time), and never leave the set.
    std::vector<ClusterTicket> tickets;
    for (int i = 0; i < 8; ++i) {
        SceneRequest request;
        request.scene = "Instant-NGP";
        request.arrival_ms = 10000.0;
        tickets.push_back(cluster.Submit(request));
    }
    std::set<std::size_t> used;
    for (const ClusterTicket ticket : tickets) {
        const ClusterRenderResult result = cluster.Wait(ticket);
        EXPECT_EQ(result.result.status, RequestStatus::kCompleted);
        EXPECT_NE(std::find(replicas.begin(), replicas.end(), result.shard),
                  replicas.end())
            << "p2c routed outside the replica set, to shard "
            << result.shard;
        EXPECT_FALSE(result.spilled);
        used.insert(result.shard);
    }
    EXPECT_EQ(used.size(), 2u) << "p2c failed to balance the burst";

    const ClusterStats stats = cluster.Snapshot();
    EXPECT_EQ(stats.p2c_routed - p2c_before, 8u);
    EXPECT_GE(stats.replica_served, 1u);
    // Prepared-path invariant per replica: serving away from home still
    // replays the pinned frame (the administrative warm pinned it).
    std::uint64_t replica_in_total = 0;
    for (const ShardTelemetry& shard : stats.per_shard) {
        EXPECT_EQ(shard.service.cache.frame_hits, shard.service.accepted);
        replica_in_total += shard.replica_in;
    }
    EXPECT_EQ(replica_in_total, stats.replica_served);
}

TEST(Replication, NeverRoutesToADeadReplica)
{
    ShardedRenderService cluster(ReplicatedConfig(3));
    SetupScenes(cluster);

    SubmitSpaced(cluster, "Instant-NGP", 5, 0.0, 100.0);
    cluster.WaitAll();
    cluster.RefreshReplication();
    const std::vector<std::size_t> replicas =
        cluster.ReplicasOf("Instant-NGP");
    ASSERT_EQ(replicas.size(), 3u);

    // Kill the middle replica once everything drained: the kill prunes
    // it from the replica set immediately.
    const std::size_t victim = replicas[1];
    cluster.KillShard(victim, 5000.0);
    EXPECT_FALSE(cluster.alive(victim));
    const std::vector<std::size_t> survivors =
        cluster.ReplicasOf("Instant-NGP");
    ASSERT_EQ(survivors.size(), 2u);
    EXPECT_EQ(std::find(survivors.begin(), survivors.end(), victim),
              survivors.end());

    // A post-kill burst routes p2c over the survivors only.
    std::vector<ClusterTicket> tickets;
    for (int i = 0; i < 6; ++i) {
        SceneRequest request;
        request.scene = "Instant-NGP";
        request.arrival_ms = 10000.0;
        tickets.push_back(cluster.Submit(request));
    }
    for (const ClusterTicket ticket : tickets) {
        const ClusterRenderResult result = cluster.Wait(ticket);
        EXPECT_EQ(result.result.status, RequestStatus::kCompleted);
        EXPECT_NE(result.shard, victim)
            << "p2c routed to a dead replica";
        EXPECT_NE(
            std::find(survivors.begin(), survivors.end(), result.shard),
            survivors.end());
    }
    const ClusterStats stats = cluster.Snapshot();
    EXPECT_EQ(stats.killed_shards, 1u);
    EXPECT_EQ(stats.live_shards, 3u);
}

TEST(Replication, AutoRefreshFiresOnTheConfiguredCadence)
{
    ShardedRenderService cluster(ReplicatedConfig(2, /*refresh_every=*/10));
    SetupScenes(cluster);

    SubmitSpaced(cluster, "Instant-NGP", 35, 0.0, 50.0);
    cluster.WaitAll();

    const ClusterStats stats = cluster.Snapshot();
    // Submissions 10, 20, and 30 each re-derived the sets.
    EXPECT_EQ(stats.replication_refreshes, 3u);
    EXPECT_EQ(cluster.ReplicasOf("Instant-NGP").size(), 2u);
    EXPECT_EQ(stats.replicated_scenes, 1u);
    // The census ignores nothing: the first refresh already saw
    // Instant-NGP leading, so p2c routing kicked in mid-stream.
    EXPECT_GE(stats.p2c_routed, 1u);
}

TEST(Replication, BatchedReplicasKeepFrameHitsEqualToDispatches)
{
    // Fusion on a replicated scene: each replica's frame hits equal its
    // dispatched batches (the fused execution touches the prepared
    // frame once per batch, not per request).
    ClusterConfig config = ReplicatedConfig(2);
    config.batch_window_ms = 5.0;
    config.max_batch_elements = 4;
    ShardedRenderService cluster(config);
    SetupScenes(cluster);

    SubmitSpaced(cluster, "Instant-NGP", 5, 0.0, 100.0);
    cluster.WaitAll();
    cluster.RefreshReplication();
    ASSERT_EQ(cluster.ReplicasOf("Instant-NGP").size(), 2u);

    // Two same-instant pairs land as fused batches on the replicas.
    for (int i = 0; i < 4; ++i) {
        SceneRequest request;
        request.scene = "Instant-NGP";
        request.arrival_ms = 10000.0 + static_cast<double>(i / 2);
        cluster.Submit(request);
    }
    cluster.WaitAll();

    const ClusterStats stats = cluster.Snapshot();
    EXPECT_GE(stats.batches_dispatched, 1u);
    for (const ShardTelemetry& shard : stats.per_shard) {
        EXPECT_EQ(shard.service.cache.frame_hits,
                  shard.service.batches_dispatched);
    }
}

TEST(Replication, ThreadCountInvariant)
{
    // The full feature — census, refresh cadence, p2c burst, a kill —
    // replays field-identically at 1 and 4 threads per shard.
    const auto run = [](int threads) {
        ShardedRenderService cluster(
            ReplicatedConfig(3, /*refresh_every=*/5, threads));
        SetupScenes(cluster);
        SubmitSpaced(cluster, "Instant-NGP", 10, 0.0, 50.0);
        cluster.WaitAll();
        cluster.KillShard(cluster.ReplicasOf("Instant-NGP")[2], 2000.0);
        std::vector<ClusterTicket> tickets;
        for (int i = 0; i < 8; ++i) {
            SceneRequest request;
            request.scene = "Instant-NGP";
            request.arrival_ms = 10000.0;
            tickets.push_back(cluster.Submit(request));
        }
        struct Outcome {
            std::vector<std::size_t> shards;
            std::vector<double> latencies;
            std::vector<std::size_t> replicas;
            std::uint64_t p2c_routed;
            std::uint64_t replica_served;
            double p99_ms;
        } outcome;
        for (const ClusterTicket ticket : tickets) {
            const ClusterRenderResult result = cluster.Wait(ticket);
            outcome.shards.push_back(result.shard);
            outcome.latencies.push_back(result.result.latency_ms);
        }
        outcome.replicas = cluster.ReplicasOf("Instant-NGP");
        const ClusterStats stats = cluster.Snapshot();
        outcome.p2c_routed = stats.p2c_routed;
        outcome.replica_served = stats.replica_served;
        outcome.p99_ms = stats.p99_ms;
        return outcome;
    };

    const auto narrow = run(1);
    const auto wide = run(4);
    EXPECT_EQ(narrow.shards, wide.shards);
    EXPECT_EQ(narrow.latencies, wide.latencies);
    EXPECT_EQ(narrow.replicas, wide.replicas);
    EXPECT_EQ(narrow.p2c_routed, wide.p2c_routed);
    EXPECT_EQ(narrow.replica_served, wide.replica_served);
    EXPECT_EQ(narrow.p99_ms, wide.p99_ms);
}

}  // namespace
}  // namespace flexnerfer
