/**
 * @file
 * Shared test matcher: exact (bitwise) equality on every FrameCost
 * field. One copy, so a field added to FrameCost only needs this one
 * helper updated for every bit-identity suite to keep covering it
 * (PR 2's gemm_utilization drop is the cautionary tale).
 */
#ifndef FLEXNERFER_TESTS_FRAME_COST_MATCHERS_H_
#define FLEXNERFER_TESTS_FRAME_COST_MATCHERS_H_

#include <gtest/gtest.h>

#include <string>

#include "accel/accelerator.h"

namespace flexnerfer {

inline void
ExpectBitIdentical(const FrameCost& got, const FrameCost& want,
                   const std::string& label = "")
{
    EXPECT_EQ(got.latency_ms, want.latency_ms) << label;
    EXPECT_EQ(got.energy_mj, want.energy_mj) << label;
    EXPECT_EQ(got.gemm_ms, want.gemm_ms) << label;
    EXPECT_EQ(got.encoding_ms, want.encoding_ms) << label;
    EXPECT_EQ(got.other_ms, want.other_ms) << label;
    EXPECT_EQ(got.codec_ms, want.codec_ms) << label;
    EXPECT_EQ(got.dram_ms, want.dram_ms) << label;
    EXPECT_EQ(got.gemm_utilization, want.gemm_utilization) << label;
    EXPECT_EQ(got.gemm_macs, want.gemm_macs) << label;
    EXPECT_EQ(got.critical_path_ms, want.critical_path_ms) << label;
    // Backstop through the authoritative predicate: a field added to
    // FrameCost (and its operator==) stays covered here even before
    // the per-field diagnostics above learn about it.
    EXPECT_TRUE(got == want) << label;
}

}  // namespace flexnerfer

#endif  // FLEXNERFER_TESTS_FRAME_COST_MATCHERS_H_
