/**
 * @file
 * Tests for dependency-aware (layer-pipelined) frame plans: DAG
 * compilation (edge validation, cycle rejection, deterministic
 * topological order, layering), the critical-path cost against
 * hand-computed values, and the pipelined-vs-flat parity suite — the
 * wavefront executor must be bit-identical to serial execution for
 * every model x accelerator family at any thread count.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <string>
#include <vector>

#include "accel/flexnerfer.h"
#include "accel/gpu_model.h"
#include "accel/neurex.h"
#include "models/workload.h"
#include "plan/frame_plan.h"
#include "plan/frame_planner.h"
#include "runtime/thread_pool.h"
#include "frame_cost_matchers.h"

namespace flexnerfer {
namespace {

/** A fixed op with a known latency, for synthetic DAGs. */
WorkloadOp
FixedOp(const std::string& name, std::vector<std::size_t> deps)
{
    WorkloadOp op;
    op.kind = OpKind::kOther;
    op.name = name;
    op.deps = std::move(deps);
    return op;
}

OpCost
FixedFragment(double latency_ms)
{
    OpCost fragment;
    fragment.cost.other_ms = latency_ms;
    fragment.cost.latency_ms = latency_ms;
    return fragment;
}

/** Checks @p order is a valid topological order of @p plan's edges. */
void
ExpectValidTopoOrder(const FramePlan& plan)
{
    const std::vector<std::size_t>& order = plan.topo_order();
    ASSERT_EQ(order.size(), plan.ops().size());
    std::vector<std::size_t> position(order.size());
    for (std::size_t i = 0; i < order.size(); ++i) {
        position[order[i]] = i;
    }
    for (std::size_t i = 0; i < plan.ops().size(); ++i) {
        for (const std::size_t dep : plan.ops()[i].deps) {
            EXPECT_LT(position[dep], position[i])
                << plan.workload_name() << ": op " << i
                << " ordered before its dependency " << dep;
        }
    }
}

TEST(PlanDag, WorkloadEdgesSurviveLoweringForEveryFamily)
{
    const FlexNeRFerModel flex;
    const NeuRexModel neurex;
    const GpuModel gpu;
    for (const std::string& name : AllModelNames()) {
        const NerfWorkload w = BuildWorkload(name);
        for (const Accelerator* accel :
             {static_cast<const Accelerator*>(&flex),
              static_cast<const Accelerator*>(&neurex),
              static_cast<const Accelerator*>(&gpu)}) {
            const FramePlan plan = FramePlanner::Compile(*accel, w);
            ASSERT_EQ(plan.ops().size(), w.ops.size());
            for (std::size_t i = 0; i < w.ops.size(); ++i) {
                EXPECT_EQ(plan.ops()[i].deps, w.ops[i].deps)
                    << accel->name() << " " << name << " op " << i;
            }
            ExpectValidTopoOrder(plan);
            // Layers are consistent: every op sits one past its
            // deepest dependency, and the depth covers the deepest op.
            std::size_t max_layer = 0;
            for (std::size_t i = 0; i < plan.ops().size(); ++i) {
                std::size_t expect_layer = 0;
                for (const std::size_t dep : plan.ops()[i].deps) {
                    expect_layer = std::max(expect_layer,
                                            plan.layer_of()[dep] + 1);
                }
                EXPECT_EQ(plan.layer_of()[i], expect_layer);
                max_layer = std::max(max_layer, plan.layer_of()[i]);
            }
            EXPECT_EQ(plan.depth(), max_layer + 1);
        }
    }
}

TEST(PlanDag, EveryModelHasRealPipelineStructure)
{
    // The stage chains of models/workload.cpp must survive into the
    // compiled plans: depth > 1 (there IS a pipeline), and the MLP
    // chain makes depth substantial, while parallel branches keep some
    // models' critical path strictly below the flat sum.
    const FlexNeRFerModel flex;
    std::size_t models_with_slack = 0;
    for (const std::string& name : AllModelNames()) {
        const FramePlan plan =
            FramePlanner::Compile(flex, BuildWorkload(name));
        EXPECT_GT(plan.depth(), 2u) << name;
        EXPECT_LE(plan.depth(), plan.ops().size()) << name;
        const FrameCost cost = plan.Execute();
        EXPECT_GT(cost.critical_path_ms, 0.0) << name;
        // <= up to rounding: the chain fold (topo order) and the flat
        // sum (op order) add the same terms in different orders, so a
        // pure chain can land an ulp either side of the sum.
        EXPECT_LE(cost.critical_path_ms,
                  cost.latency_ms * (1.0 + 1e-12))
            << name;
        if (cost.critical_path_ms < cost.latency_ms * (1.0 - 1e-9)) {
            ++models_with_slack;
        }
    }
    // At least the branchy models (NSVF, TensoRF, NeRF's view branch)
    // must expose overlap headroom.
    EXPECT_GE(models_with_slack, 3u);
}

TEST(PlanDagDeathTest, RejectsDependencyCycles)
{
    FramePlanBuilder builder("cyclic");
    builder.AddFixedOp(FixedOp("a", {1}), FixedFragment(1.0));
    builder.AddFixedOp(FixedOp("b", {0}), FixedFragment(1.0));
    EXPECT_DEATH(builder.Build(), "cycle");
}

TEST(PlanDagDeathTest, RejectsSelfDependencyAndOutOfRangeEdges)
{
    {
        FramePlanBuilder builder("self");
        builder.AddFixedOp(FixedOp("a", {0}), FixedFragment(1.0));
        EXPECT_DEATH(builder.Build(), "depends on itself");
    }
    {
        FramePlanBuilder builder("dangling");
        builder.AddFixedOp(FixedOp("a", {7}), FixedFragment(1.0));
        EXPECT_DEATH(builder.Build(), "only 1 ops");
    }
}

TEST(PlanDag, TopoOrderDeterministicAcrossCompilesAndThreadCounts)
{
    // Two independent compiles order identically, and executing on 1-
    // vs 8-thread pools neither perturbs the plan nor the cost. Ties
    // break toward the lowest op index (Kahn with an index scan).
    ThreadPool pool1(1);
    ThreadPool pool8(8);
    const FlexNeRFerModel flex;
    for (const std::string& name : AllModelNames()) {
        const NerfWorkload w = BuildWorkload(name);
        const FramePlan a = FramePlanner::Compile(flex, w);
        const FramePlan b = FramePlanner::Compile(flex, w);
        EXPECT_EQ(a.topo_order(), b.topo_order()) << name;
        EXPECT_EQ(a.layer_of(), b.layer_of()) << name;
        const FrameCost serial = a.Execute();
        ExpectBitIdentical(a.Execute(&pool1), serial, name + " 1-thread");
        ExpectBitIdentical(a.Execute(&pool8), serial, name + " 8-thread");
        ExpectBitIdentical(b.Execute(&pool8), serial, name + " recompiled");
        EXPECT_EQ(a.topo_order(), b.topo_order()) << name << " post-run";
    }
}

TEST(PlanDag, CriticalPathOfThreeLayerMlpChainIsHandComputable)
{
    // A 3-layer MLP chain compiled for the FlexNeRFer model: the
    // critical path of a pure chain is exactly the sum of its per-op
    // latencies, accumulated in chain order. Per-op latencies are read
    // from single-op sub-plans of the same ops (compilation is pure,
    // so the op's fragment is identical in isolation).
    const FlexNeRFerModel flex;
    NerfWorkload chain;
    chain.name = "chain3";
    std::int64_t in = 64;
    for (int layer = 0; layer < 3; ++layer) {
        WorkloadOp op;
        op.kind = OpKind::kGemm;
        op.name = "fc" + std::to_string(layer);
        if (layer > 0) op.deps = {static_cast<std::size_t>(layer - 1)};
        op.gemm = {4096, in, 128, 1.0, 1.0, 0.0};
        chain.ops.push_back(op);
        in = 128;
    }

    double expected_cp = 0.0;
    double expected_flat = 0.0;
    for (const WorkloadOp& op : chain.ops) {
        NerfWorkload single;
        single.name = "single_" + op.name;
        WorkloadOp alone = op;
        alone.deps.clear();
        single.ops.push_back(alone);
        const double op_ms =
            FramePlanner::Compile(flex, single).Execute().latency_ms;
        expected_cp += op_ms;  // chain: finish(i) = finish(i-1) + op_ms
        expected_flat += op_ms;
    }

    const FramePlan plan = FramePlanner::Compile(flex, chain);
    EXPECT_EQ(plan.depth(), 3u);
    const FrameCost cost = plan.Execute();
    EXPECT_EQ(cost.critical_path_ms, expected_cp);
    EXPECT_EQ(cost.latency_ms, expected_flat);
    EXPECT_EQ(cost.critical_path_ms, cost.latency_ms);
}

TEST(PlanDag, CriticalPathOfDiamondTakesTheLongerBranch)
{
    // source -> {fast, slow} -> sink, with hand-picked latencies: the
    // critical path must be source + slow + sink; the flat sum charges
    // both branches.
    FramePlanBuilder builder("diamond");
    builder.AddFixedOp(FixedOp("source", {}), FixedFragment(2.0));
    builder.AddFixedOp(FixedOp("fast", {0}), FixedFragment(1.0));
    builder.AddFixedOp(FixedOp("slow", {0}), FixedFragment(5.0));
    builder.AddFixedOp(FixedOp("sink", {1, 2}), FixedFragment(3.0));
    const FramePlan plan = builder.Build();
    EXPECT_EQ(plan.depth(), 3u);

    ThreadPool pool(4);
    const FrameCost serial = plan.Execute();
    EXPECT_EQ(serial.critical_path_ms, 2.0 + 5.0 + 3.0);
    EXPECT_EQ(serial.latency_ms, 2.0 + 1.0 + 5.0 + 3.0);
    ExpectBitIdentical(plan.Execute(&pool), serial, "diamond pooled");
}

TEST(PlanDag, PipelinedVsFlatParityAllModelsAllFamilies)
{
    // The pipelined-parity suite: for all 7 models x 3 accelerator
    // families, the wavefront execution is bit-identical across
    // --threads 1/4/8 and to serial execution, and the critical path
    // obeys its bounds (0 < cp <= flat sum; equality iff the plan is a
    // pure chain).
    ThreadPool pool1(1);
    ThreadPool pool4(4);
    ThreadPool pool8(8);
    const FlexNeRFerModel flex;
    const NeuRexModel neurex;
    const GpuModel gpu;
    for (const Accelerator* accel :
         {static_cast<const Accelerator*>(&flex),
          static_cast<const Accelerator*>(&neurex),
          static_cast<const Accelerator*>(&gpu)}) {
        for (const std::string& name : AllModelNames()) {
            const NerfWorkload w = BuildWorkload(name);
            const FramePlan plan = FramePlanner::Compile(*accel, w);
            const std::string label = accel->name() + " " + name;
            const FrameCost serial = plan.Execute();
            ExpectBitIdentical(plan.Execute(&pool1), serial,
                               label + " threads=1");
            ExpectBitIdentical(plan.Execute(&pool4), serial,
                               label + " threads=4");
            ExpectBitIdentical(plan.Execute(&pool8), serial,
                               label + " threads=8");
            EXPECT_GT(serial.critical_path_ms, 0.0) << label;
            // Tolerance: see EveryModelHasRealPipelineStructure.
            EXPECT_LE(serial.critical_path_ms,
                      serial.latency_ms * (1.0 + 1e-12))
                << label;
        }
    }
}

}  // namespace
}  // namespace flexnerfer
