/**
 * @file
 * Tests for the experiment-metric helpers.
 */
#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace flexnerfer {
namespace {

TEST(Metrics, GeometricMean)
{
    EXPECT_DOUBLE_EQ(GeometricMean({4.0}), 4.0);
    EXPECT_NEAR(GeometricMean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(GeometricMean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(Metrics, SpeedupAndEnergyGain)
{
    std::vector<FrameCost> slow(2), fast(2);
    slow[0].latency_ms = 100.0;
    slow[1].latency_ms = 400.0;
    fast[0].latency_ms = 10.0;
    fast[1].latency_ms = 10.0;
    EXPECT_NEAR(GeoMeanSpeedup(slow, fast), 20.0, 1e-9);

    slow[0].energy_mj = 90.0;
    slow[1].energy_mj = 40.0;
    fast[0].energy_mj = 10.0;
    fast[1].energy_mj = 10.0;
    EXPECT_NEAR(GeoMeanEnergyGain(slow, fast), 6.0, 1e-9);
}

TEST(Metrics, DescribeFrameCostMentionsStages)
{
    FrameCost c;
    c.latency_ms = 12.5;
    c.gemm_ms = 10.0;
    const std::string s = DescribeFrameCost(c);
    EXPECT_NE(s.find("12.50 ms"), std::string::npos);
    EXPECT_NE(s.find("gemm 10.00"), std::string::npos);
}

}  // namespace
}  // namespace flexnerfer
