/**
 * @file
 * Tests for the bit-scalable MAC unit, sub-multipliers, reduction trees,
 * and the MAC array. The key property: fused multi-nibble products must be
 * bit-exact against native integer multiplication in every precision mode.
 */
#include <gtest/gtest.h>

#include "common/rng.h"
#include "mac/bit_scalable_mac.h"
#include "mac/mac_array.h"
#include "mac/reduction_tree.h"
#include "mac/sub_multiplier.h"

namespace flexnerfer {
namespace {

TEST(SubMultiplier, UnsignedProducts)
{
    EXPECT_EQ(SubMultiply(15, 15, false, false), 225);
    EXPECT_EQ(SubMultiply(0, 9, false, false), 0);
    EXPECT_EQ(SubMultiply(7, 8, false, false), 56);
}

TEST(SubMultiplier, SignedInterpretation)
{
    EXPECT_EQ(NibbleAsSigned(0xF), -1);
    EXPECT_EQ(NibbleAsSigned(0x8), -8);
    EXPECT_EQ(NibbleAsSigned(0x7), 7);
    EXPECT_EQ(SubMultiply(0xF, 0xF, true, true), 1);    // -1 * -1
    EXPECT_EQ(SubMultiply(0x8, 0x7, true, true), -56);  // -8 * 7
    EXPECT_EQ(SubMultiply(0xF, 15, true, false), -15);  // -1 * 15
}

TEST(NibbleDecomposition, ReconstructsValue)
{
    Rng rng(1);
    for (int trial = 0; trial < 2000; ++trial) {
        const auto v = static_cast<std::int32_t>(
            rng.UniformInt(-32768, 32767));
        const auto nibbles = DecomposeNibbles(v, 4);
        std::int64_t rebuilt = 0;
        for (int i = 0; i < 3; ++i) {
            rebuilt += static_cast<std::int64_t>(nibbles[i]) << (4 * i);
        }
        // Multiply instead of shifting: left-shifting a negative value
        // is undefined in C++17.
        rebuilt +=
            static_cast<std::int64_t>(NibbleAsSigned(nibbles[3])) * 4096;
        EXPECT_EQ(rebuilt, v);
    }
}

TEST(BitScalableMac, Int16ExactAgainstNativeMultiply)
{
    Rng rng(2);
    for (int trial = 0; trial < 5000; ++trial) {
        const auto a = static_cast<std::int32_t>(
            rng.UniformInt(-32768, 32767));
        const auto b = static_cast<std::int32_t>(
            rng.UniformInt(-32768, 32767));
        EXPECT_EQ(BitScalableMacUnit::MultiplyInt16(a, b),
                  static_cast<std::int64_t>(a) * b)
            << a << " * " << b;
    }
}

TEST(BitScalableMac, Int16Extremes)
{
    const std::int32_t extremes[] = {-32768, -32767, -1, 0, 1, 32767};
    for (std::int32_t a : extremes) {
        for (std::int32_t b : extremes) {
            EXPECT_EQ(BitScalableMacUnit::MultiplyInt16(a, b),
                      static_cast<std::int64_t>(a) * b);
        }
    }
}

TEST(BitScalableMac, Int8LanesExact)
{
    Rng rng(3);
    for (int trial = 0; trial < 2000; ++trial) {
        std::array<std::int32_t, 4> a{};
        std::array<std::int32_t, 4> b{};
        for (int lane = 0; lane < 4; ++lane) {
            a[lane] = static_cast<std::int32_t>(rng.UniformInt(-128, 127));
            b[lane] = static_cast<std::int32_t>(rng.UniformInt(-128, 127));
        }
        const auto out = BitScalableMacUnit::MultiplyInt8(a, b);
        for (int lane = 0; lane < 4; ++lane) {
            EXPECT_EQ(out[lane], static_cast<std::int64_t>(a[lane]) * b[lane]);
        }
    }
}

TEST(BitScalableMac, Int4LanesExact)
{
    // INT4 space is tiny: exhaust it across lanes.
    for (int a = -8; a <= 7; ++a) {
        for (int b = -8; b <= 7; ++b) {
            std::array<std::int32_t, 16> av{};
            std::array<std::int32_t, 16> bv{};
            av.fill(a);
            bv.fill(b);
            const auto out = BitScalableMacUnit::MultiplyInt4(av, bv);
            for (int lane = 0; lane < 16; ++lane) {
                EXPECT_EQ(out[lane], a * b);
            }
        }
    }
}

/** Lane-generic multiply across all precisions. */
class MacPrecision : public ::testing::TestWithParam<Precision>
{};

TEST_P(MacPrecision, GenericMultiplyMatchesNative)
{
    const Precision p = GetParam();
    const int lanes = MultipliersPerMacUnit(p);
    Rng rng(4);
    for (int trial = 0; trial < 500; ++trial) {
        std::vector<std::int32_t> a(lanes), b(lanes);
        for (int lane = 0; lane < lanes; ++lane) {
            a[lane] = static_cast<std::int32_t>(
                rng.UniformInt(MinValue(p), MaxValue(p)));
            b[lane] = static_cast<std::int32_t>(
                rng.UniformInt(MinValue(p), MaxValue(p)));
        }
        const auto out = BitScalableMacUnit::Multiply(p, a, b);
        for (int lane = 0; lane < lanes; ++lane) {
            EXPECT_EQ(out[lane], static_cast<std::int64_t>(a[lane]) * b[lane]);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllPrecisions, MacPrecision,
                         ::testing::Values(Precision::kInt4, Precision::kInt8,
                                           Precision::kInt16));

TEST(MacUnitPpa, ShifterOptimizationMatchesFig12)
{
    EXPECT_EQ(BitScalableMacUnit::ShiftersPerUnit(false), 24);
    EXPECT_EQ(BitScalableMacUnit::ShiftersPerUnit(true), 16);
    // Fig. 12(c): -28.3% area, -45.6% power.
    const double area_saving = 1.0 - BitScalableMacUnit::AreaUm2(true) /
                                         BitScalableMacUnit::AreaUm2(false);
    const double power_saving = 1.0 - BitScalableMacUnit::PowerMw(true) /
                                          BitScalableMacUnit::PowerMw(false);
    EXPECT_NEAR(area_saving, 0.283, 0.01);
    EXPECT_NEAR(power_saving, 0.456, 0.01);
}

TEST(MacUnitPpa, ArrayShifterCountMatchesPaper)
{
    // Section 4.2: a 16x16 unoptimized array holds 6,144 shifters.
    const MacArray unopt({16, 0.8, /*optimized_shifters=*/false});
    EXPECT_EQ(unopt.TotalShifters(), 6144);
    const MacArray opt({16, 0.8, /*optimized_shifters=*/true});
    EXPECT_EQ(opt.TotalShifters(), 4096);
}

TEST(ReductionTree, MergesEqualIndexRuns)
{
    const std::vector<ReductionOperand> leaves = {
        {1, 0}, {2, 0}, {3, 0}, {10, 1}, {20, 1}, {5, 2}};
    ReductionStats stats;
    const auto out = FlexibleReductionTree::Reduce(leaves, &stats);
    ASSERT_EQ(out.size(), 3u);
    EXPECT_EQ(out[0].value, 6);
    EXPECT_EQ(out[0].index, 0);
    EXPECT_EQ(out[1].value, 30);
    EXPECT_EQ(out[1].index, 1);
    EXPECT_EQ(out[2].value, 5);
    EXPECT_EQ(out[2].index, 2);
    EXPECT_GT(stats.additions, 0);
}

TEST(ReductionTree, BypassesDistinctIndices)
{
    const std::vector<ReductionOperand> leaves = {
        {1, 7}, {2, 8}, {3, 9}, {4, 10}};
    const auto out = FlexibleReductionTree::Reduce(leaves);
    ASSERT_EQ(out.size(), 4u);
    for (std::size_t i = 0; i < out.size(); ++i) {
        EXPECT_EQ(out[i], leaves[i]);
    }
}

TEST(ReductionTree, DropsIdleSlots)
{
    const std::vector<ReductionOperand> leaves = {
        {1, 0}, {0, -1}, {2, 0}, {0, -1}};
    const auto out = FlexibleReductionTree::Reduce(leaves);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].value, 3);
}

TEST(ReductionTree, RandomSegmentSumsProperty)
{
    Rng rng(5);
    for (int trial = 0; trial < 200; ++trial) {
        std::vector<ReductionOperand> leaves;
        std::vector<std::int64_t> expected_sums;
        std::vector<std::int32_t> expected_idx;
        int index = 0;
        while (leaves.size() < 64) {
            const int run = static_cast<int>(rng.UniformInt(1, 5));
            std::int64_t sum = 0;
            for (int i = 0; i < run && leaves.size() < 64; ++i) {
                const auto v = rng.UniformInt(-100, 100);
                leaves.push_back({v, index});
                sum += v;
            }
            expected_sums.push_back(sum);
            expected_idx.push_back(index);
            ++index;
        }
        const auto out = FlexibleReductionTree::Reduce(leaves);
        ASSERT_EQ(out.size(), expected_sums.size());
        for (std::size_t i = 0; i < out.size(); ++i) {
            EXPECT_EQ(out[i].value, expected_sums[i]);
            EXPECT_EQ(out[i].index, expected_idx[i]);
        }
    }
}

TEST(ReductionTree, DepthIsLogarithmic)
{
    EXPECT_EQ(FlexibleReductionTree::DepthForLeaves(1), 0);
    EXPECT_EQ(FlexibleReductionTree::DepthForLeaves(2), 1);
    EXPECT_EQ(FlexibleReductionTree::DepthForLeaves(64), 6);
    EXPECT_EQ(FlexibleReductionTree::DepthForLeaves(4096), 12);
}

TEST(MacArray, CapacityMatchesFig6)
{
    const MacArray array({64, 0.8, true});
    EXPECT_EQ(array.MacUnits(), 4096);
    EXPECT_EQ(array.Multipliers(Precision::kInt16), 4096);
    EXPECT_EQ(array.Multipliers(Precision::kInt8), 16384);
    EXPECT_EQ(array.Multipliers(Precision::kInt4), 65536);
}

TEST(MacArray, PeakTopsMatchesTable3)
{
    // Table 3: 6.55 / 26.2 / 104.9 TOPS at INT16 / INT8 / INT4, 800 MHz.
    const MacArray array({64, 0.8, true});
    EXPECT_NEAR(array.PeakTops(Precision::kInt16), 6.55, 0.01);
    EXPECT_NEAR(array.PeakTops(Precision::kInt8), 26.2, 0.1);
    EXPECT_NEAR(array.PeakTops(Precision::kInt4), 104.9, 0.1);
}

TEST(MacArray, ComputeMappedAccumulatesByIndex)
{
    const MacArray array({4, 0.8, true});
    std::vector<MappedOperand> mapped = {
        {2, 3, 0}, {4, 5, 0}, {-1, 7, 1}, {6, -2, 2}};
    const auto out = array.ComputeMapped(Precision::kInt16, mapped);
    ASSERT_EQ(out.size(), 3u);
    EXPECT_EQ(out[0].value, 2 * 3 + 4 * 5);
    EXPECT_EQ(out[1].value, -7);
    EXPECT_EQ(out[2].value, -12);
}

TEST(MacArray, ComputeMappedRespectsCapacity)
{
    const MacArray array({2, 0.8, true});
    std::vector<MappedOperand> mapped(4, {1, 1, 0});  // exactly 4 at INT16
    EXPECT_EQ(array.ComputeMapped(Precision::kInt16, mapped).size(), 1u);
}

}  // namespace
}  // namespace flexnerfer
