/**
 * @file
 * Tests for the sparsity formats, footprint model, optimal-format selector,
 * sparsity-ratio calculator, and flexible codec. The parameterized suites
 * sweep (precision x sparsity) exactly like the paper's Fig. 7/8 analysis.
 */
#include <gtest/gtest.h>

#include <tuple>

#include "common/matrix.h"
#include "common/rng.h"
#include "sparse/bitmap.h"
#include "sparse/compressed.h"
#include "sparse/coo.h"
#include "sparse/flex_codec.h"
#include "sparse/footprint.h"
#include "sparse/format_selector.h"
#include "sparse/sr_calculator.h"

namespace flexnerfer {
namespace {

TEST(Footprint, IndexBits)
{
    EXPECT_EQ(IndexBits(1), 1);
    EXPECT_EQ(IndexBits(2), 1);
    EXPECT_EQ(IndexBits(3), 2);
    EXPECT_EQ(IndexBits(64), 6);
    EXPECT_EQ(IndexBits(65), 7);
    EXPECT_EQ(IndexBits(4096), 12);
}

TEST(Footprint, DenseMatchesElementCount)
{
    EXPECT_EQ(DenseFootprintBits(64, 64, Precision::kInt16), 64 * 64 * 16);
    EXPECT_EQ(DenseFootprintBits(256, 256, Precision::kInt4),
              256L * 256 * 4);
}

TEST(Footprint, TileDimTracksPrecision)
{
    // Fig. 6(b): 64x64 / 128x128 / 256x256 effective grids.
    EXPECT_EQ(TileDim(Precision::kInt16), 64);
    EXPECT_EQ(TileDim(Precision::kInt8), 128);
    EXPECT_EQ(TileDim(Precision::kInt4), 256);
}

TEST(Footprint, FetchSizeDoublesWhenPrecisionHalves)
{
    // Fig. 6(b): the tile fetch doubles as precision halves.
    const auto b16 = TileFetchBytes(Precision::kInt16);
    const auto b8 = TileFetchBytes(Precision::kInt8);
    const auto b4 = TileFetchBytes(Precision::kInt4);
    EXPECT_EQ(b16, 8192);
    EXPECT_EQ(b8, 2 * b16);
    EXPECT_EQ(b4, 2 * b8);
}

TEST(Footprint, ElementsPerFetchQuadruple)
{
    // Section 4.3: N_data/fetch increases fourfold when precision halves.
    EXPECT_EQ(ElementsPerFetch(Precision::kInt16), 4096);
    EXPECT_EQ(ElementsPerFetch(Precision::kInt8), 4 * 4096);
    EXPECT_EQ(ElementsPerFetch(Precision::kInt4), 16 * 4096);
}

/** Property suite over (precision, sparsity): all formats round-trip. */
class FormatRoundTrip
    : public ::testing::TestWithParam<std::tuple<Precision, double>>
{};

TEST_P(FormatRoundTrip, CooPreservesData)
{
    const auto [precision, sparsity] = GetParam();
    Rng rng(11);
    const MatrixI m = MakeSparseMatrix(37, 53, sparsity, precision, rng);
    const CooMatrix coo = CooMatrix::FromDense(m);
    EXPECT_EQ(coo.Nnz(), m.Nnz());
    EXPECT_EQ(coo.ToDense(), m);
}

TEST_P(FormatRoundTrip, CsrPreservesData)
{
    const auto [precision, sparsity] = GetParam();
    Rng rng(12);
    const MatrixI m = MakeSparseMatrix(41, 29, sparsity, precision, rng);
    const CompressedMatrix csr =
        CompressedMatrix::FromDense(m, CompressedOrientation::kRowWise);
    EXPECT_EQ(csr.ToDense(), m);
}

TEST_P(FormatRoundTrip, CscPreservesData)
{
    const auto [precision, sparsity] = GetParam();
    Rng rng(13);
    const MatrixI m = MakeSparseMatrix(23, 61, sparsity, precision, rng);
    const CompressedMatrix csc =
        CompressedMatrix::FromDense(m, CompressedOrientation::kColWise);
    EXPECT_EQ(csc.ToDense(), m);
}

TEST_P(FormatRoundTrip, BitmapPreservesData)
{
    const auto [precision, sparsity] = GetParam();
    Rng rng(14);
    const MatrixI m = MakeSparseMatrix(33, 47, sparsity, precision, rng);
    const BitmapMatrix bm = BitmapMatrix::FromDense(m);
    EXPECT_EQ(bm.Popcount(), static_cast<std::int64_t>(m.Nnz()));
    EXPECT_EQ(bm.ToDense(), m);
}

TEST_P(FormatRoundTrip, EncodedBitsMatchAnalyticModel)
{
    const auto [precision, sparsity] = GetParam();
    Rng rng(15);
    const MatrixI m = MakeSparseMatrix(64, 64, sparsity, precision, rng);
    const auto nnz = static_cast<std::int64_t>(m.Nnz());

    EXPECT_EQ(CooMatrix::FromDense(m).EncodedBits(precision),
              CooFootprintBits(64, 64, nnz, precision));
    EXPECT_EQ(CompressedMatrix::FromDense(m,
                                          CompressedOrientation::kRowWise)
                  .EncodedBits(precision),
              CsrFootprintBits(64, 64, nnz, precision));
    EXPECT_EQ(BitmapMatrix::FromDense(m).EncodedBits(precision),
              BitmapFootprintBits(64, 64, nnz, precision));
}

TEST_P(FormatRoundTrip, FlexCodecRoundTripsWithOptimalFormat)
{
    const auto [precision, sparsity] = GetParam();
    Rng rng(16);
    const MatrixI m = MakeSparseMatrix(64, 64, sparsity, precision, rng);
    const FlexFormatCodec codec;
    const EncodedTile tile = codec.Encode(m, precision);
    EXPECT_EQ(tile.format,
              SelectOptimalFormat(64, 64,
                                  static_cast<std::int64_t>(m.Nnz()),
                                  precision));
    EXPECT_EQ(codec.Decode(tile), m);
    // An all-zero tile may legitimately compress to a zero-bit payload
    // (COO with nnz = 0); anything non-empty must occupy storage.
    if (m.Nnz() > 0) {
        EXPECT_GT(tile.encoded_bits, 0);
    } else {
        EXPECT_LT(tile.encoded_bits,
                  DenseFootprintBits(64, 64, precision));
    }
}

INSTANTIATE_TEST_SUITE_P(
    PrecisionSparsitySweep, FormatRoundTrip,
    ::testing::Combine(::testing::Values(Precision::kInt4, Precision::kInt8,
                                         Precision::kInt16),
                       ::testing::Values(0.0, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99,
                                         1.0)));

TEST(FormatSelector, DenseTileUsesNoCompression)
{
    for (Precision p : kAllPrecisions) {
        EXPECT_EQ(SelectOptimalFormatForRatio(0.0, p), SparsityFormat::kNone)
            << ToString(p);
    }
}

TEST(FormatSelector, ExtremeSparsityPrefersCooOrCsr)
{
    for (Precision p : kAllPrecisions) {
        const SparsityFormat f = SelectOptimalFormatForRatio(0.999, p);
        EXPECT_TRUE(f == SparsityFormat::kCoo || f == SparsityFormat::kCsr)
            << ToString(p) << " chose " << ToString(f);
    }
}

TEST(FormatSelector, MidSparsityPrefersBitmapAt16Bit)
{
    // Fig. 8: Bitmap dominates the mid-sparsity band in 16-bit mode.
    EXPECT_EQ(SelectOptimalFormatForRatio(0.30, Precision::kInt16),
              SparsityFormat::kBitmap);
    EXPECT_EQ(SelectOptimalFormatForRatio(0.50, Precision::kInt16),
              SparsityFormat::kBitmap);
}

TEST(FormatSelector, BitmapOnsetAt16BitIsOneSixteenth)
{
    // Bitmap beats None when 1 + d*16 < 16 bits/elem: sparsity > 6.25%.
    const double onset =
        FormatOnsetSparsityPercent(SparsityFormat::kBitmap,
                                   Precision::kInt16);
    EXPECT_NEAR(onset, 6.25, 0.5);
}

TEST(FormatSelector, CompressionOnsetShiftsRightAtLowerPrecision)
{
    // Takeaway 4 / Fig. 8: lower precision shifts every format's onset to
    // higher sparsity (metadata is relatively more expensive).
    const double onset16 =
        FormatOnsetSparsityPercent(SparsityFormat::kBitmap,
                                   Precision::kInt16);
    const double onset8 =
        FormatOnsetSparsityPercent(SparsityFormat::kBitmap, Precision::kInt8);
    const double onset4 =
        FormatOnsetSparsityPercent(SparsityFormat::kBitmap, Precision::kInt4);
    EXPECT_LT(onset16, onset8);
    EXPECT_LT(onset8, onset4);
}

TEST(FormatSelector, SelectionMatchesExhaustiveMinimum)
{
    for (Precision p : kAllPrecisions) {
        const int dim = TileDim(p, 16);  // smaller grid for speed
        for (int pct = 0; pct <= 100; pct += 7) {
            const auto total = static_cast<std::int64_t>(dim) * dim;
            const auto nnz = total * (100 - pct) / 100;
            const SparsityFormat chosen =
                SelectOptimalFormat(dim, dim, nnz, p);
            for (SparsityFormat f : kAllFormats) {
                EXPECT_LE(FootprintBits(chosen, dim, dim, nnz, p),
                          FootprintBits(f, dim, dim, nnz, p))
                    << ToString(p) << " sparsity " << pct << "%: chose "
                    << ToString(chosen) << " but " << ToString(f)
                    << " is smaller";
            }
        }
    }
}

TEST(SrCalculator, ExactRatioOverMultipleFetches)
{
    SrCalculator calc(Precision::kInt16, 8);  // 64 elements per fetch
    MatrixI tile(8, 8);
    tile.at(0, 0) = 5;
    tile.at(3, 4) = -2;  // 2 non-zeros out of 64
    calc.Observe(tile);
    EXPECT_NEAR(calc.SparsityRatioPercent(), (1.0 - 2.0 / 64.0) * 100.0,
                1e-9);

    MatrixI dense(8, 8, 1);
    calc.Observe(dense);  // now 66 of 128
    EXPECT_NEAR(calc.SparsityRatioPercent(), (1.0 - 66.0 / 128.0) * 100.0,
                1e-9);
    EXPECT_EQ(calc.fetches(), 2);
}

TEST(SrCalculator, SmallTilesCountAsPaddedFetches)
{
    SrCalculator calc(Precision::kInt16, 8);
    MatrixI small(2, 2, 3);  // 4 non-zeros, padded to a 64-element fetch
    calc.Observe(small);
    EXPECT_NEAR(calc.SparsityRatioPercent(), (1.0 - 4.0 / 64.0) * 100.0,
                1e-9);
}

TEST(SrCalculator, CyclesScaleWithFetches)
{
    SrCalculator calc(Precision::kInt8, 8);
    MatrixI tile(16, 16, 1);
    for (int i = 0; i < 10; ++i) calc.Observe(tile);
    EXPECT_GE(calc.CyclesUsed(), 10.0);
    EXPECT_LE(calc.CyclesUsed(), 10.0 + 5.0);
    calc.Reset();
    EXPECT_EQ(calc.fetches(), 0);
    EXPECT_DOUBLE_EQ(calc.CyclesUsed(), 0.0);
}

TEST(FlexCodec, WeightPathHonoursExplicitFormat)
{
    Rng rng(20);
    const MatrixI m =
        MakeSparseMatrix(32, 32, 0.5, Precision::kInt8, rng);
    const FlexFormatCodec codec;
    for (SparsityFormat f : kAllFormats) {
        const EncodedTile t = codec.EncodeAs(m, Precision::kInt8, f);
        EXPECT_EQ(t.format, f);
        EXPECT_EQ(codec.Decode(t), m) << ToString(f);
    }
}

TEST(FlexCodec, CostsScaleWithThroughput)
{
    Rng rng(21);
    const MatrixI m =
        MakeSparseMatrix(64, 64, 0.8, Precision::kInt16, rng);
    const FlexFormatCodec fast({64, 256.0});
    const FlexFormatCodec slow({64, 64.0});
    const EncodedTile t = fast.Encode(m, Precision::kInt16);
    EXPECT_NEAR(slow.EncodeCost(t).cycles, 4.0 * fast.EncodeCost(t).cycles,
                1e-9);
    EXPECT_LT(fast.DecodeCost(t).bytes_in, fast.DecodeCost(t).bytes_out)
        << "compressed tile should be smaller than dense";
}

TEST(FlexCodec, HighSparsityShrinksFootprint)
{
    Rng rng(22);
    const FlexFormatCodec codec;
    const MatrixI sparse =
        MakeSparseMatrix(64, 64, 0.95, Precision::kInt16, rng);
    const MatrixI dense =
        MakeSparseMatrix(64, 64, 0.0, Precision::kInt16, rng);
    const auto ts = codec.Encode(sparse, Precision::kInt16);
    const auto td = codec.Encode(dense, Precision::kInt16);
    EXPECT_LT(ts.encoded_bits, td.encoded_bits / 4);
}

}  // namespace
}  // namespace flexnerfer
