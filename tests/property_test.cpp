/**
 * @file
 * Property-based suites sweeping configuration spaces: routing-control
 * correctness over random destination sets, bitmap intersection against
 * the mapper, engine invariants over (precision x dims x NoC style),
 * exhaustive small-Benes routing, quantization error bounds, and the
 * footprint model's monotonicity.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <tuple>

#include "common/matrix.h"
#include "common/rng.h"
#include "gemm/engine.h"
#include "gemm/mapper.h"
#include "gemm/tiling.h"
#include "noc/benes.h"
#include "noc/route_control.h"
#include "nerf/quantization.h"
#include "sparse/footprint.h"
#include "sparse/intersection.h"

namespace flexnerfer {
namespace {

/** Routing controls must reach exactly the requested destination set. */
class RouteControlLeaves : public ::testing::TestWithParam<int>
{};

TEST_P(RouteControlLeaves, ControlsDeliverExactlyTheDestinations)
{
    const int leaves = GetParam();
    Rng rng(1000 + leaves);
    for (int trial = 0; trial < 100; ++trial) {
        const int n_dests =
            static_cast<int>(rng.UniformInt(1, leaves));
        std::vector<int> all(leaves);
        std::iota(all.begin(), all.end(), 0);
        std::shuffle(all.begin(), all.end(), rng.engine());
        std::vector<int> dests(all.begin(), all.begin() + n_dests);
        std::sort(dests.begin(), dests.end());

        const RouteControls controls =
            GenerateRouteControls(leaves, dests);
        EXPECT_EQ(SimulateRouteControls(leaves, controls), dests);

        // Switch count equals the union-of-paths internal-node count,
        // which the HMF-NoC hop model charges as edges plus the root.
        EXPECT_LE(static_cast<int>(controls.switches.size()), leaves - 1);
        if (n_dests == leaves) {
            EXPECT_TRUE(controls.is_broadcast);
            EXPECT_EQ(static_cast<int>(controls.switches.size()),
                      leaves - 1);
        }
    }
}

TEST_P(RouteControlLeaves, UnicastUsesExactlyDepthSwitches)
{
    const int leaves = GetParam();
    int depth = 0;
    while ((1 << depth) < leaves) ++depth;
    for (int d = 0; d < leaves; ++d) {
        const RouteControls c = GenerateRouteControls(leaves, {d});
        EXPECT_EQ(static_cast<int>(c.switches.size()), depth);
        for (const SwitchSetting& s : c.switches) {
            EXPECT_NE(s.route, SwitchSetting::Route::kBoth);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(TreeSizes, RouteControlLeaves,
                         ::testing::Values(2, 4, 8, 16, 64, 256));

TEST(RouteControl, PathEnablesMatchHalves)
{
    const RouteControls left = GenerateRouteControls(8, {0, 2});
    EXPECT_TRUE(left.path_left_enabled);
    EXPECT_FALSE(left.path_right_enabled);
    const RouteControls both = GenerateRouteControls(8, {1, 6});
    EXPECT_TRUE(both.path_left_enabled);
    EXPECT_TRUE(both.path_right_enabled);
}

/** Bitmap intersection agrees with the mapper's packed work. */
class IntersectionSweep
    : public ::testing::TestWithParam<std::tuple<int, double>>
{};

TEST_P(IntersectionSweep, WorkCountMatchesMapperProducts)
{
    const auto [dim, sparsity] = GetParam();
    Rng rng(2000 + dim);
    const MatrixI a =
        MakeSparseMatrix(dim, dim, sparsity, Precision::kInt16, rng);
    const MatrixI b =
        MakeSparseMatrix(dim, dim, sparsity, Precision::kInt16, rng);
    const BitmapMatrix ba = BitmapMatrix::FromDense(a);
    const BitmapMatrix bb = BitmapMatrix::FromDense(b);

    const DenseMapper mapper(dim);
    const auto waves = mapper.MapTilePair(a, b, 0, 0, 0, dim, true);
    std::int64_t mapped = 0;
    for (const MappedWave& w : waves) {
        mapped += static_cast<std::int64_t>(w.slots.size());
    }
    EXPECT_EQ(CountIntersectionWork(ba, bb), mapped);
}

TEST_P(IntersectionSweep, PerKPairsMatchOperands)
{
    const auto [dim, sparsity] = GetParam();
    Rng rng(3000 + dim);
    const MatrixI a =
        MakeSparseMatrix(dim, dim, sparsity, Precision::kInt16, rng);
    const MatrixI b =
        MakeSparseMatrix(dim, dim, sparsity, Precision::kInt16, rng);
    const BitmapMatrix ba = BitmapMatrix::FromDense(a);
    const BitmapMatrix bb = BitmapMatrix::FromDense(b);
    for (int k = 0; k < dim; ++k) {
        for (const auto& [i, j] : IntersectColumnRow(ba, bb, k)) {
            EXPECT_NE(a.at(i, k), 0);
            EXPECT_NE(b.at(k, j), 0);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    DimsAndSparsities, IntersectionSweep,
    ::testing::Combine(::testing::Values(4, 8, 16),
                       ::testing::Values(0.2, 0.5, 0.8, 0.95)));

TEST(Intersection, CycleModelScalesWithLanes)
{
    Rng rng(4);
    const MatrixI m =
        MakeSparseMatrix(64, 64, 0.5, Precision::kInt16, rng);
    const BitmapMatrix bm = BitmapMatrix::FromDense(m);
    EXPECT_GT(IntersectionCycles(bm, bm, 1),
              IntersectionCycles(bm, bm, 64));
}

/** Engine invariants over the architecture space. */
class EngineInvariants
    : public ::testing::TestWithParam<
          std::tuple<Precision, int, NocStyle>>
{};

TEST_P(EngineInvariants, CostModelStaysConsistent)
{
    const auto [precision, array_dim, noc_style] = GetParam();
    GemmEngineConfig config;
    config.precision = precision;
    config.array_dim = array_dim;
    config.noc_style = noc_style;
    config.compute_output = false;
    const GemmEngine engine(config);

    const GemmShape shape{512, 128, 96, 0.6, 0.8, 0.2};
    const GemmResult r = engine.RunFromShape(shape);

    EXPECT_GT(r.cycles, 0.0);
    EXPECT_GE(r.cycles, r.compute_cycles);
    EXPECT_GT(r.useful_macs, 0.0);
    EXPECT_LE(r.useful_macs, r.issued_macs + 1e-6);
    EXPECT_GT(r.utilization, 0.0);
    EXPECT_LE(r.utilization, 1.0 + 1e-9);
    EXPECT_GT(r.energy.TotalPj(), 0.0);
    EXPECT_GE(r.latency_ms, r.onchip_ms - 1e-12);
    EXPECT_GT(r.a_bytes_encoded, 0.0);
    EXPECT_GT(r.dram_bytes, 0.0);
}

TEST_P(EngineInvariants, MorePruningNeverSlower)
{
    const auto [precision, array_dim, noc_style] = GetParam();
    GemmEngineConfig config;
    config.precision = precision;
    config.array_dim = array_dim;
    config.noc_style = noc_style;
    config.compute_output = false;
    const GemmEngine engine(config);

    double previous = 1e300;
    for (double prune : {0.0, 0.3, 0.6, 0.9}) {
        const GemmResult r = engine.RunFromShape(
            {2048, 256, 256, 0.6, 1.0, prune});
        EXPECT_LE(r.latency_ms, previous * (1.0 + 1e-9)) << prune;
        previous = r.latency_ms;
    }
}

INSTANTIATE_TEST_SUITE_P(
    ArchitectureSpace, EngineInvariants,
    ::testing::Combine(::testing::Values(Precision::kInt4, Precision::kInt8,
                                         Precision::kInt16),
                       ::testing::Values(8, 16, 64),
                       ::testing::Values(NocStyle::kHmfTree,
                                         NocStyle::kHmTree,
                                         NocStyle::kBenes)));

TEST(BenesExhaustive, AllPermutationsOfFourPorts)
{
    BenesNetwork net(4);
    std::vector<int> perm = {0, 1, 2, 3};
    do {
        EXPECT_EQ(net.Route(perm).arrived_at, perm);
    } while (std::next_permutation(perm.begin(), perm.end()));
}

/** Quantization error is bounded by half a step at every precision. */
class QuantizationBound : public ::testing::TestWithParam<Precision>
{};

TEST_P(QuantizationBound, ErrorWithinHalfStep)
{
    const Precision p = GetParam();
    Rng rng(5);
    for (int trial = 0; trial < 50; ++trial) {
        MatrixD m(8, 8);
        for (int r = 0; r < 8; ++r) {
            for (int c = 0; c < 8; ++c) {
                m.at(r, c) = rng.Gaussian(0.0, 2.0);
            }
        }
        const QuantizedMatrix q = QuantizeMatrix(m, p);
        for (int r = 0; r < 8; ++r) {
            for (int c = 0; c < 8; ++c) {
                const double rebuilt =
                    DequantizeValue(q.values.at(r, c), q.scale);
                EXPECT_NEAR(rebuilt, m.at(r, c), q.scale * 0.5 + 1e-12);
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllPrecisions, QuantizationBound,
                         ::testing::Values(Precision::kInt4,
                                           Precision::kInt8,
                                           Precision::kInt16));

TEST(FootprintProperties, MonotoneInNnz)
{
    for (Precision p : kAllPrecisions) {
        const int dim = TileDim(p, 16);
        const std::int64_t total = static_cast<std::int64_t>(dim) * dim;
        for (SparsityFormat f :
             {SparsityFormat::kCoo, SparsityFormat::kCsr,
              SparsityFormat::kBitmap}) {
            std::int64_t previous = -1;
            for (std::int64_t nnz = 0; nnz <= total; nnz += total / 16) {
                const std::int64_t bits =
                    FootprintBits(f, dim, dim, nnz, p);
                EXPECT_GE(bits, previous) << ToString(f) << " " << nnz;
                previous = bits;
            }
        }
    }
}

TEST(FootprintProperties, DenseIsNnzIndependent)
{
    EXPECT_EQ(FootprintBits(SparsityFormat::kNone, 64, 64, 0,
                            Precision::kInt16),
              FootprintBits(SparsityFormat::kNone, 64, 64, 4096,
                            Precision::kInt16));
}

}  // namespace
}  // namespace flexnerfer
