/**
 * @file
 * Tests for the observability layer (src/obs/): the virtual trace
 * projection's thread-count invariance, span nesting/parentage across
 * the serving path (single service, batch join, cluster spill), the
 * unified MetricsRegistry against ServiceStats, the disabled path's
 * no-op guarantee, and the FLEX_CHECK flight-recorder dump.
 */
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"
#include "serve/cluster.h"
#include "serve/render_service.h"

namespace flexnerfer {
namespace {

SweepPoint
NgpFlexScene()
{
    SweepPoint spec;
    spec.backend = Backend::kFlexNeRFer;
    spec.precision = Precision::kInt8;
    spec.model = "Instant-NGP";
    return spec;
}

SweepPoint
NerfGpuScene()
{
    SweepPoint spec;
    spec.backend = Backend::kGpu;
    spec.model = "NeRF";
    return spec;
}

/** Finds the first event matching (trace, phase, name), or null. */
const TraceEvent*
Find(const std::vector<TraceEvent>& events, std::uint64_t trace,
     TracePhase phase, const std::string& name)
{
    for (const TraceEvent& event : events) {
        if (event.trace_id == trace && event.phase == phase &&
            event.name == name) {
            return &event;
        }
    }
    return nullptr;
}

std::size_t
CountNamed(const std::vector<TraceEvent>& events, TracePhase phase,
           const std::string& name)
{
    std::size_t count = 0;
    for (const TraceEvent& event : events) {
        if (event.phase == phase && event.name == name) ++count;
    }
    return count;
}

/**
 * One deterministic traced serving run: two scenes, a mixed stream of
 * accepted / shed / rejected requests, exported as the virtual
 * Chrome-trace projection. The export must not depend on @p threads.
 */
std::string
TracedServingRun(int threads)
{
    TraceRecorder recorder;
    TraceRecorder::InstallGlobal(&recorder);
    {
        ServeConfig config;
        config.threads = threads;
        config.admission.max_queue_depth = 8;
        RenderService service(config);
        service.RegisterScene("ngp", NgpFlexScene());
        service.RegisterScene("nerf", NerfGpuScene());
        service.WarmScene("ngp");
        service.WarmScene("nerf");
        double arrival = 0.0;
        for (int i = 0; i < 24; ++i) {
            SceneRequest request;
            request.scene = (i % 3 == 0) ? "nerf" : "ngp";
            request.arrival_ms = arrival;
            request.priority = i % 2;
            // Some hopeless deadlines so the shed path is traced too.
            request.deadline_ms = (i % 7 == 0) ? 1.0 : 0.0;
            arrival += 5.0;
            service.Submit(request);
        }
        service.WaitAll();
    }
    TraceRecorder::InstallGlobal(nullptr);
    std::ostringstream out;
    recorder.WriteChromeTrace(out, TraceClock::kVirtual);
    return out.str();
}

TEST(TraceExport, VirtualProjectionIsThreadCountInvariant)
{
    // The repo-wide determinism contract extended to observability:
    // every event's virtual timestamps, ids, and order derive from the
    // virtual clock only, so the serialized projection is bit-identical
    // whether the service dispatches on one worker or eight.
    const std::string one = TracedServingRun(1);
    const std::string eight = TracedServingRun(8);
    EXPECT_FALSE(one.empty());
    EXPECT_EQ(one, eight);
}

TEST(TraceExport, SpanNestingLinksRequestServiceFrameAndOps)
{
    TraceRecorder recorder;
    TraceRecorder::InstallGlobal(&recorder);
    {
        ServeConfig config;
        config.threads = 2;
        RenderService service(config);
        service.RegisterScene("ngp", NgpFlexScene());
        service.WarmScene("ngp");
        SceneRequest request;
        request.scene = "ngp";
        request.arrival_ms = 0.0;
        service.Submit(request);
        service.WaitAll();
    }
    TraceRecorder::InstallGlobal(nullptr);

    const std::vector<TraceEvent> events = recorder.SortedEvents();
    // Trace 1 is the warm-up (ids are assigned in call order); trace 2
    // is the request.
    ASSERT_EQ(recorder.trace_count(), 2u);
    const std::uint64_t trace = 2;

    const TraceEvent* request_span =
        Find(events, trace, TracePhase::kSpan, "request");
    ASSERT_NE(request_span, nullptr);
    EXPECT_EQ(request_span->parent_span, 0u);  // root of its lane
    EXPECT_EQ(request_span->span_id, SpanId(trace, "request"));
    EXPECT_DOUBLE_EQ(request_span->virt_begin_ms, 0.0);

    const TraceEvent* queue_wait =
        Find(events, trace, TracePhase::kSpan, "queue_wait");
    ASSERT_NE(queue_wait, nullptr);
    EXPECT_EQ(queue_wait->parent_span, SpanId(trace, "request"));

    const TraceEvent* service_span =
        Find(events, trace, TracePhase::kSpan, "service");
    ASSERT_NE(service_span, nullptr);
    EXPECT_EQ(service_span->parent_span, SpanId(trace, "request"));
    // The service span starts where the queue wait ends and closes the
    // request span.
    EXPECT_DOUBLE_EQ(service_span->virt_begin_ms, queue_wait->virt_end_ms);
    EXPECT_DOUBLE_EQ(service_span->virt_end_ms, request_span->virt_end_ms);

    const TraceEvent* accepted =
        Find(events, trace, TracePhase::kInstant, "accepted");
    ASSERT_NE(accepted, nullptr);
    EXPECT_STREQ(accepted->category, "admission");

    // The prepared path records its cache outcome into the request's
    // trace. A steady-state request replays the memoized frame — the
    // FramePlan only *executes* (and records frame/op spans) where the
    // frame actually runs: the warm-up trace.
    EXPECT_NE(Find(events, trace, TracePhase::kInstant, "frame_hit"),
              nullptr);
    EXPECT_EQ(Find(events, trace, TracePhase::kSpan, "frame:Instant-NGP"),
              nullptr);

    // The warm-up thread's ScopedTraceContext carried the warm trace's
    // identity into FramePlan::Execute: the frame span parents on the
    // warm_scene root span and every per-op span parents on the frame
    // span, nested inside it on the virtual axis.
    const std::uint64_t warm = 1;
    const TraceEvent* warm_span =
        Find(events, warm, TracePhase::kSpan, "warm_scene");
    ASSERT_NE(warm_span, nullptr);
    const TraceEvent* frame_span =
        Find(events, warm, TracePhase::kSpan, "frame:Instant-NGP");
    ASSERT_NE(frame_span, nullptr);
    EXPECT_EQ(frame_span->parent_span, SpanId(warm, "warm_scene"));

    std::size_t op_spans = 0;
    for (const TraceEvent& event : events) {
        if (event.trace_id != warm || event.phase != TracePhase::kSpan ||
            std::string(event.category) != "op") {
            continue;
        }
        ++op_spans;
        EXPECT_EQ(event.parent_span, SpanId(warm, "frame:Instant-NGP"));
        EXPECT_GE(event.virt_begin_ms, frame_span->virt_begin_ms);
        EXPECT_LE(event.virt_end_ms, frame_span->virt_end_ms);
    }
    EXPECT_GT(op_spans, 0u);
}

TEST(TraceExport, BatchJoinRecordsLifecycleInstantsForEveryMember)
{
    TraceRecorder recorder;
    TraceRecorder::InstallGlobal(&recorder);
    std::uint64_t traces = 0;
    {
        ServeConfig config;
        config.threads = 2;
        config.batch_window_ms = 1e6;
        RenderService service(config);
        service.RegisterScene("ngp", NgpFlexScene());
        service.WarmScene("ngp");
        SceneRequest request;
        request.scene = "ngp";
        request.arrival_ms = 0.0;
        service.Submit(request);  // opener
        service.Submit(request);  // joiner
        service.Submit(request);  // joiner
        service.WaitAll();        // flushes the open window
        traces = recorder.trace_count();
    }
    TraceRecorder::InstallGlobal(nullptr);

    // Warm trace + three request traces.
    EXPECT_EQ(traces, 4u);
    const std::vector<TraceEvent> events = recorder.SortedEvents();
    EXPECT_EQ(CountNamed(events, TracePhase::kInstant, "batch_open"), 1u);
    EXPECT_EQ(CountNamed(events, TracePhase::kInstant, "batch_join"), 2u);
    EXPECT_EQ(CountNamed(events, TracePhase::kInstant, "batch_flush"), 1u);
    // Every member gets its own request + service spans; the fused
    // execution runs once, under the opener's context.
    EXPECT_EQ(CountNamed(events, TracePhase::kSpan, "request"), 3u);
    EXPECT_EQ(CountNamed(events, TracePhase::kSpan, "service"), 3u);
    EXPECT_EQ(
        CountNamed(events, TracePhase::kSpan, "frame:Instant-NGP+batch3"),
        1u);
    // The joiners' batch_join instants name the batch they joined: the
    // opener's trace (trace 2; 1 is the warm-up).
    for (const TraceEvent& event : events) {
        if (event.name != "batch_join") continue;
        bool found = false;
        for (const TraceArg& arg : event.args) {
            if (arg.key != "batch_trace") continue;
            EXPECT_EQ(arg.value, "2");
            found = true;
        }
        EXPECT_TRUE(found);
    }
}

TEST(TraceExport, ClusterRoutingRecordsProbesAndSpills)
{
    TraceRecorder recorder;
    TraceRecorder::InstallGlobal(&recorder);
    std::size_t spilled = 0;
    std::size_t submitted = 0;
    {
        ClusterConfig config;
        config.shards = 2;
        config.threads_per_shard = 2;
        config.admission.max_queue_depth = 1;  // force spills fast
        ShardedRenderService cluster(config);
        cluster.RegisterScene("ngp", NgpFlexScene());
        cluster.WarmScene("ngp");
        for (int i = 0; i < 6; ++i) {
            SceneRequest request;
            request.scene = "ngp";
            request.arrival_ms = 0.0;
            cluster.Submit(request);
            ++submitted;
        }
        for (const ClusterRenderResult& r : cluster.WaitAll()) {
            if (r.spilled) ++spilled;
        }
    }
    TraceRecorder::InstallGlobal(nullptr);

    ASSERT_GT(spilled, 0u) << "the tight queue must force a spill";
    const std::vector<TraceEvent> events = recorder.SortedEvents();
    // Every submission records its home probe, one route decision, and
    // a cluster_submit root span.
    EXPECT_EQ(CountNamed(events, TracePhase::kInstant, "route"), submitted);
    EXPECT_EQ(CountNamed(events, TracePhase::kSpan, "cluster_submit"),
              submitted);
    std::size_t probes = 0;
    std::size_t spilled_routes = 0;
    for (const TraceEvent& event : events) {
        if (event.phase != TracePhase::kInstant) continue;
        if (event.name.rfind("probe:shard", 0) == 0) ++probes;
        if (event.name != "route") continue;
        for (const TraceArg& arg : event.args) {
            if (arg.key == "spilled" && arg.value == "1") ++spilled_routes;
        }
    }
    EXPECT_GE(probes, submitted);  // home probe always, spills probe more
    EXPECT_EQ(spilled_routes, spilled);
    // The request span under a routed trace parents on the cluster's
    // root span.
    bool checked_parent = false;
    for (const TraceEvent& event : events) {
        if (event.phase != TracePhase::kSpan || event.name != "request") {
            continue;
        }
        EXPECT_EQ(event.parent_span,
                  SpanId(event.trace_id, "cluster_submit"));
        checked_parent = true;
    }
    EXPECT_TRUE(checked_parent);
}

TEST(MetricsRegistry, SnapshotPublishMatchesServiceStats)
{
    ServeConfig config;
    config.threads = 2;
    config.admission.max_queue_depth = 4;
    RenderService service(config);
    service.RegisterScene("ngp", NgpFlexScene());
    service.RegisterScene("nerf", NerfGpuScene());
    service.WarmScene("ngp");
    service.WarmScene("nerf");
    for (int i = 0; i < 16; ++i) {
        SceneRequest request;
        request.scene = (i % 2 == 0) ? "ngp" : "nerf";
        request.arrival_ms = 2.0 * static_cast<double>(i);
        request.deadline_ms = (i % 5 == 0) ? 1.0 : 0.0;
        service.Submit(request);
    }
    service.WaitAll();

    const ServiceStats stats = service.Snapshot();
    MetricsRegistry registry;
    service.PublishMetrics(registry);

    EXPECT_EQ(registry.Counter("serve.submitted"),
              static_cast<double>(stats.submitted));
    EXPECT_EQ(registry.Counter("serve.accepted"),
              static_cast<double>(stats.accepted));
    EXPECT_EQ(registry.Counter("serve.shed_deadline"),
              static_cast<double>(stats.shed_deadline));
    EXPECT_EQ(registry.Counter("serve.rejected_queue_full"),
              static_cast<double>(stats.rejected_queue_full));
    EXPECT_EQ(registry.Counter("serve.cache.frame_hits"),
              static_cast<double>(stats.cache.frame_hits));
    EXPECT_EQ(registry.Gauge("serve.shed_rate"), stats.ShedRate());
    EXPECT_EQ(registry.Gauge("serve.latency.p50_ms"), stats.p50_ms);
    EXPECT_EQ(registry.Gauge("serve.latency.p99_ms"), stats.p99_ms);
    EXPECT_EQ(registry.Gauge("serve.utilization"), stats.utilization);
    // Per-scene slices ride along.
    for (const SceneStats& scene : stats.scenes) {
        EXPECT_EQ(
            registry.Counter("serve.scene." + scene.name + ".requests"),
            static_cast<double>(scene.requests));
    }

    // The JSON export parses as one counters + one gauges object and
    // round-trips a spot value.
    const std::string json = registry.ToJson();
    EXPECT_NE(json.find("\"counters\""), std::string::npos);
    EXPECT_NE(json.find("\"gauges\""), std::string::npos);
    EXPECT_NE(json.find("\"serve.submitted\""), std::string::npos);
}

TEST(TraceDisabled, RecordsNothingAndKeepsProbesCheap)
{
    // The default: no recorder installed. Every instrumentation site
    // guards on this one relaxed load, so the whole serving path must
    // work — and record nothing — without one.
    ASSERT_EQ(TraceRecorder::Global(), nullptr);
    EXPECT_FALSE(CurrentTraceContext().active());

    ServeConfig config;
    config.threads = 2;
    RenderService service(config);
    service.RegisterScene("ngp", NgpFlexScene());
    service.WarmScene("ngp");
    SceneRequest request;
    request.scene = "ngp";
    request.arrival_ms = 0.0;
    service.Submit(request);
    service.WaitAll();
    EXPECT_EQ(TraceRecorder::Global(), nullptr);

    // Bound the disabled-path probe cost: 2M probes in well under a
    // (very generous, CI-noise-proof) second.
    const auto begin = std::chrono::steady_clock::now();
    std::size_t nulls = 0;
    for (int i = 0; i < 2000000; ++i) {
        if (TraceRecorder::Global() == nullptr) ++nulls;
    }
    const double elapsed_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - begin)
            .count();
    EXPECT_EQ(nulls, 2000000u);
    EXPECT_LT(elapsed_ms, 1000.0);
}

using FlightRecorderDeathTest = ::testing::Test;

TEST(FlightRecorderDeathTest, CheckFailureDumpsTheLastSpans)
{
    // A failing FLEX_CHECK must route through the logging hook into
    // the flight-recorder dump: the post-mortem shows the last spans
    // (here, the instant recorded just before the failure).
    EXPECT_DEATH(
        {
            TraceRecorder recorder(8);
            TraceRecorder::InstallGlobal(&recorder);
            const std::uint64_t trace = recorder.BeginTrace("doomed");
            TraceContext ctx;
            ctx.trace_id = trace;
            recorder.RecordInstant(ctx, "test", "about_to_fail", 1.0);
            FLEX_CHECK_MSG(1 == 2, "intentional trace_test failure");
        },
        "about_to_fail");
}

}  // namespace
}  // namespace flexnerfer
