/**
 * @file
 * Unit tests for temporal-coherence serving: the CoherenceModel's
 * quantized reuse mapping, the DeltaWorkload transform (fingerprints,
 * preserved dependency edges, op floors), the PlanCache predecessor-
 * keyed delta path (including the race between delta lookups and LRU
 * eviction — satellite pin semantics), the unified
 * Accelerator::Estimate entry point vs the inline estimators, the
 * unified Submit(request, SubmitOptions) API and its one-PR deprecated
 * shim, trajectory sessions through RenderService (delta pricing,
 * coherence-break fallback, thread-count determinism), and sticky
 * sessions on the sharded cluster (home routing and KillShard
 * re-homing).
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "accel/flexnerfer.h"
#include "models/trajectory.h"
#include "models/workload.h"
#include "plan/plan_cache.h"
#include "runtime/sweep_runner.h"
#include "serve/cluster.h"
#include "serve/render_service.h"
#include "frame_cost_matchers.h"

namespace flexnerfer {
namespace {

SweepPoint
FlexScene(const std::string& model)
{
    SweepPoint spec;
    spec.backend = Backend::kFlexNeRFer;
    spec.precision = Precision::kInt8;
    spec.model = model;
    return spec;
}

Pose
PoseAt(double x, double yaw_deg = 0.0)
{
    Pose pose;
    pose.x = x;
    pose.yaw_deg = yaw_deg;
    return pose;
}

TEST(CoherenceModel, QuantizesReuseDownAndFlagsBreaks)
{
    const CoherenceModel model;  // translation 1.0, rotation 90, 1/64ths

    // A static camera reuses everything: the full quantum, no break.
    EXPECT_EQ(model.ReuseQuantum(PoseAt(0.0), PoseAt(0.0)),
              model.reuse_quanta);
    EXPECT_DOUBLE_EQ(model.ReuseFraction(PoseAt(0.0), PoseAt(0.0)), 1.0);
    EXPECT_FALSE(model.IsCoherenceBreak(model.reuse_quanta));

    // Quantization rounds DOWN (conservative): reuse 0.95 on a 1/64
    // grid is floor(60.8) = 60, never 61.
    EXPECT_EQ(model.ReuseQuantum(PoseAt(0.0), PoseAt(0.05)), 60u);

    // Translation and rotation invalidate additively: 0.25 units plus
    // 22.5 degrees (a quarter of the 90-degree scale) each cost a
    // quarter of the view -> reuse 0.5 -> quantum 32.
    EXPECT_EQ(model.ReuseQuantum(PoseAt(0.0), PoseAt(0.25, 22.5)), 32u);

    // A jump past the scale clamps to zero overlap.
    EXPECT_EQ(model.ReuseQuantum(PoseAt(0.0), PoseAt(10.0)), 0u);

    // The break boundary is exact on the grid: threshold 0.25 of 64
    // quanta means 15/64 breaks and 16/64 does not.
    EXPECT_TRUE(model.IsCoherenceBreak(15));
    EXPECT_FALSE(model.IsCoherenceBreak(16));
    EXPECT_TRUE(model.IsCoherenceBreak(0));

    // Pure function: replaying the same delta gives the same quantum.
    EXPECT_EQ(model.ReuseQuantum(PoseAt(1.0), PoseAt(1.03)),
              model.ReuseQuantum(PoseAt(1.0), PoseAt(1.03)));
}

TEST(DeltaWorkload, PreservesEdgesSeparatesFingerprintsAndFloorsOps)
{
    const NerfWorkload base = BuildWorkload("Instant-NGP");

    // Zero overlap is a full recompute: the base workload unchanged,
    // same fingerprint, same cache identity.
    const NerfWorkload full = DeltaWorkload(base, 0, 64);
    EXPECT_EQ(WorkloadFingerprint(full), WorkloadFingerprint(base));

    // A real delta separates from the base and from every other
    // quantum: one plan-cache entry per (scene, quantum).
    const NerfWorkload d32 = DeltaWorkload(base, 32, 64);
    const NerfWorkload d60 = DeltaWorkload(base, 60, 64);
    EXPECT_NE(WorkloadFingerprint(d32), WorkloadFingerprint(base));
    EXPECT_NE(WorkloadFingerprint(d32), WorkloadFingerprint(d60));
    EXPECT_NE(d32.name.find("+delta32of64"), std::string::npos);

    // The DAG keeps the base frame's shape: one appended warp_validate
    // source op, every base op (and its dependency edges) intact, no op
    // shrunk to nothing even at full reuse.
    const NerfWorkload d64 = DeltaWorkload(base, 64, 64);
    ASSERT_EQ(d64.ops.size(), base.ops.size() + 1);
    for (std::size_t i = 0; i < base.ops.size(); ++i) {
        EXPECT_EQ(d64.ops[i].deps, base.ops[i].deps) << "op " << i;
        EXPECT_NE(d64.ops[i].name.find("#d"), std::string::npos);
    }
    EXPECT_NE(d64.ops.back().name.find("warp_validate"), std::string::npos);
    EXPECT_TRUE(d64.ops.back().deps.empty());  // a source op

    // The delta prices below the full frame, and the warp pass makes
    // even the static-camera delta non-free.
    const FlexNeRFerModel accel;
    const double full_ms = EstimatedServiceMs(accel.RunWorkload(base));
    const double d32_ms = EstimatedServiceMs(accel.RunWorkload(d32));
    const double d64_ms = EstimatedServiceMs(accel.RunWorkload(d64));
    EXPECT_LT(d64_ms, d32_ms);
    EXPECT_LT(d32_ms, full_ms);
    EXPECT_GT(d64_ms, 0.0);
}

TEST(PlanCache, DeltaLookupsTelescopeAndCountDistinctly)
{
    const FlexNeRFerModel accel;
    const NerfWorkload base = BuildWorkload("NeRF");
    const NerfWorkload shape = DeltaWorkload(base, 48, 64);

    PlanCache cache;
    const PlanCache::PreparedFrame frame = cache.Prepare(accel, base);
    const FrameCost full = cache.Run(frame);

    // First delta lookup compiles (a delta miss on top of the plan
    // miss); the replay is a delta hit and replays bit-identically.
    const FrameCost first = cache.RunDelta(frame, accel, shape);
    EXPECT_EQ(cache.stats().delta_misses, 1u);
    EXPECT_EQ(cache.stats().delta_hits, 0u);
    const FrameCost again = cache.RunDelta(frame, accel, shape);
    EXPECT_EQ(cache.stats().delta_hits, 1u);
    ExpectBitIdentical(again, first);
    EXPECT_LT(EstimatedServiceMs(first), EstimatedServiceMs(full));

    // The key is predecessor-scoped: the same delta shape hanging off a
    // different base frame is a different entry, and a delta handle is
    // itself a valid predecessor (the trajectory telescopes).
    const PlanCache::PreparedFrame other =
        cache.Prepare(accel, BuildWorkload("TensoRF"));
    const std::size_t before = cache.size();
    cache.PrepareDelta(other, accel,
                       DeltaWorkload(BuildWorkload("TensoRF"), 48, 64));
    EXPECT_EQ(cache.size(), before + 1);
    const PlanCache::PreparedFrame chained =
        cache.PrepareDelta(frame, accel, shape);
    cache.RunDelta(chained, accel, shape);
    EXPECT_EQ(cache.stats().delta_misses, 3u);
}

TEST(PlanCache, DeltaLookupsSurviveLruEvictionThroughPins)
{
    // Satellite: the race between predecessor-keyed lookups and LRU
    // eviction. A capacity-2 cache churns both the predecessor and the
    // delta entry out of the key table; the predecessor *handle* pins
    // its entry (and key) through eviction, so PrepareDelta stays
    // valid, and the evicted delta entry recompiles byte-identically as
    // a fresh delta miss.
    const FlexNeRFerModel accel;
    const NerfWorkload base = BuildWorkload("Instant-NGP");
    const NerfWorkload shape = DeltaWorkload(base, 56, 64);

    PlanCache cache(/*capacity=*/2);
    const PlanCache::PreparedFrame frame = cache.Prepare(accel, base);
    const FrameCost first = cache.RunDelta(frame, accel, shape);
    EXPECT_EQ(cache.stats().delta_misses, 1u);

    // Churn two unrelated frames through the bounded cache: both the
    // base entry and the delta entry leave the key table.
    cache.Run(accel, BuildWorkload("NeRF"));
    cache.Run(accel, BuildWorkload("TensoRF"));
    EXPECT_GE(cache.stats().evictions, 2u);
    EXPECT_EQ(cache.size(), 2u);

    // The pinned predecessor still replays bit-identically, and the
    // delta path recompiles into the same plan: same cost, one more
    // delta miss (distinctly counted), zero delta hits wasted.
    const FrameCost replayed = cache.RunDelta(frame, accel, shape);
    ExpectBitIdentical(replayed, first);
    EXPECT_EQ(cache.stats().delta_misses, 2u);
    EXPECT_EQ(cache.stats().delta_hits, 0u);

    // Once resident again it hits like any entry.
    cache.RunDelta(frame, accel, shape);
    EXPECT_EQ(cache.stats().delta_hits, 1u);
}

TEST(Accelerator, UnifiedEstimateMatchesTheInlineEstimators)
{
    const FlexNeRFerModel accel;
    const NerfWorkload base = BuildWorkload("Instant-NGP");
    const FrameCost full = accel.RunWorkload(base);
    const FrameCost delta = accel.RunWorkload(DeltaWorkload(base, 48, 64));

    EstimateContext context;
    const ServiceEstimate plain = Accelerator::Estimate(full, context);
    EXPECT_EQ(plain.kind, EstimateKind::kFull);
    EXPECT_DOUBLE_EQ(plain.service_ms, EstimatedServiceMs(full));
    EXPECT_DOUBLE_EQ(plain.full_ms, plain.service_ms);
    EXPECT_DOUBLE_EQ(plain.savings_ms, 0.0);

    context.kind = EstimateKind::kBatchJoin;
    context.reference = &delta;  // "previous" = the smaller frame
    const ServiceEstimate join = Accelerator::Estimate(full, context);
    EXPECT_DOUBLE_EQ(join.service_ms,
                     EstimatedMarginalServiceMs(full, delta));
    EXPECT_DOUBLE_EQ(join.savings_ms, join.full_ms - join.service_ms);

    context.kind = EstimateKind::kDelta;
    context.reference = &full;
    const ServiceEstimate priced = Accelerator::Estimate(delta, context);
    EXPECT_DOUBLE_EQ(priced.service_ms,
                     EstimatedDeltaServiceMs(delta, full));
    EXPECT_DOUBLE_EQ(priced.full_ms, EstimatedServiceMs(full));
    EXPECT_GT(priced.savings_ms, 0.0);

    // The surcharge rides both sides, so savings reflect the rule only.
    context.extra_service_ms = 7.5;
    const ServiceEstimate taxed = Accelerator::Estimate(delta, context);
    EXPECT_DOUBLE_EQ(taxed.service_ms, priced.service_ms + 7.5);
    EXPECT_DOUBLE_EQ(taxed.full_ms, priced.full_ms + 7.5);
    EXPECT_DOUBLE_EQ(taxed.savings_ms, priced.savings_ms);
}

TEST(RenderService, UnifiedSubmitMatchesDefaultsAndDeprecatedShim)
{
    // Submit(request), Submit(request, SubmitOptions{}), and the
    // one-PR deprecated surcharge shim must produce byte-identical
    // verdicts — the API redesign changes the signature, not a single
    // admitted millisecond.
    const auto run = [](int variant) {
        ServeConfig config;
        config.threads = 2;
        RenderService service(config);
        service.RegisterScene("ngp", FlexScene("Instant-NGP"));
        const double est = EstimatedServiceMs(service.WarmScene("ngp"));
        for (int i = 0; i < 8; ++i) {
            SceneRequest request;
            request.scene = "ngp";
            request.arrival_ms = 0.6 * est * i;
            request.deadline_ms = 2.0 * est + 9.0;
            if (variant == 0) {
                SubmitOptions options;
                options.extra_service_ms = 9.0;
                service.Submit(request, options);
            } else if (variant == 1) {
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
                service.Submit(request, 9.0);
#pragma GCC diagnostic pop
            } else {
                request.deadline_ms = 2.0 * est;
                service.Submit(request);
            }
        }
        std::vector<RenderResult> results = service.WaitAll();
        return results;
    };

    const std::vector<RenderResult> options_run = run(0);
    const std::vector<RenderResult> shim_run = run(1);
    ASSERT_EQ(options_run.size(), shim_run.size());
    for (std::size_t i = 0; i < options_run.size(); ++i) {
        EXPECT_EQ(options_run[i].status, shim_run[i].status) << i;
        EXPECT_DOUBLE_EQ(options_run[i].latency_ms, shim_run[i].latency_ms)
            << i;
    }
    // Default options are the legacy single-argument path exactly: the
    // un-surcharged run admits on the same schedule shape.
    const std::vector<RenderResult> bare_run = run(2);
    EXPECT_EQ(bare_run.size(), options_run.size());
}

/** Replays a fixed pose path through a fresh service; returns results
 *  and the snapshot for determinism comparisons. */
std::pair<std::vector<RenderResult>, ServiceStats>
ReplayTrajectory(int threads, const std::vector<Pose>& poses)
{
    ServeConfig config;
    config.threads = threads;
    RenderService service(config);
    service.RegisterScene("ngp", FlexScene("Instant-NGP"));
    const double est = EstimatedServiceMs(service.WarmScene("ngp"));
    const SessionId session = service.OpenSession("ngp");
    for (std::size_t k = 0; k < poses.size(); ++k) {
        SceneRequest request;
        request.scene = "ngp";
        request.arrival_ms = 1.1 * est * static_cast<double>(k);
        request.deadline_ms = 4.0 * est;
        SubmitOptions options;
        options.session = session;
        options.pose = poses[k];
        service.Submit(request, options);
    }
    auto results = service.WaitAll();
    return {std::move(results), service.Snapshot()};
}

TEST(RenderService, SessionsPriceDeltasAndFallBackOnBreaks)
{
    // A smooth walk with one mid-path teleport: frame 0 is full (no
    // predecessor), smooth frames are deltas, the teleport is a
    // coherence break priced as a full recompute, and the walk resumes
    // on the delta path afterwards.
    std::vector<Pose> poses;
    for (int k = 0; k < 12; ++k) {
        poses.push_back(PoseAt(0.05 * k + (k >= 6 ? 10.0 : 0.0)));
    }
    const auto [results, stats] = ReplayTrajectory(2, poses);

    ASSERT_EQ(stats.sessions.size(), 1u);
    const SessionStats& session = stats.sessions.front();
    EXPECT_EQ(session.frames, poses.size());
    EXPECT_EQ(session.coherence_breaks, 1u);
    EXPECT_EQ(session.full_frames, 2u);
    EXPECT_EQ(session.delta_frames, poses.size() - 2);
    EXPECT_GT(session.delta_savings_ms, 0.0);
    EXPECT_NEAR(session.DeltaHitRate(),
                static_cast<double>(poses.size() - 2) /
                    static_cast<double>(poses.size()),
                1e-12);

    // One scene compile plus one delta shape (the smooth 0.05 step is
    // one quantum): the break replays the pinned full frame, it does
    // not recompile anything.
    EXPECT_EQ(stats.cache.plan_misses, 2u);
    EXPECT_EQ(stats.cache.delta_misses, 1u);

    // Delta frames are cheaper than the two full frames.
    const double full_latency = results[0].latency_ms;
    EXPECT_DOUBLE_EQ(results[6].latency_ms, full_latency);  // the break
    for (std::size_t k : {1u, 5u, 7u, 11u}) {
        EXPECT_LT(results[k].latency_ms, full_latency) << "frame " << k;
    }

    // Aggregate rollup matches the per-session row.
    EXPECT_EQ(stats.sessions_opened, 1u);
    EXPECT_EQ(stats.session_frames, poses.size());
    EXPECT_EQ(stats.delta_frames, session.delta_frames);
    EXPECT_EQ(stats.coherence_breaks, 1u);
}

TEST(RenderService, SessionVerdictsAreThreadCountInvariant)
{
    std::vector<Pose> poses;
    for (int k = 0; k < 16; ++k) {
        poses.push_back(PoseAt(0.03 * k, 1.5 * k));
    }
    const auto [one, stats_one] = ReplayTrajectory(1, poses);
    const auto [four, stats_four] = ReplayTrajectory(4, poses);

    ASSERT_EQ(one.size(), four.size());
    for (std::size_t k = 0; k < one.size(); ++k) {
        EXPECT_EQ(one[k].status, four[k].status) << k;
        EXPECT_DOUBLE_EQ(one[k].latency_ms, four[k].latency_ms) << k;
        ExpectBitIdentical(one[k].cost, four[k].cost);
    }
    EXPECT_EQ(stats_one.delta_frames, stats_four.delta_frames);
    EXPECT_EQ(stats_one.coherence_breaks, stats_four.coherence_breaks);
    EXPECT_DOUBLE_EQ(stats_one.delta_savings_ms,
                     stats_four.delta_savings_ms);
    EXPECT_DOUBLE_EQ(stats_one.session_mean_reuse,
                     stats_four.session_mean_reuse);
}

TEST(ShardedRenderService, SessionsStickToTheirHomeAndRehomeOnKill)
{
    ClusterConfig config;
    config.shards = 3;
    config.threads_per_shard = 2;
    ShardedRenderService cluster(config);
    cluster.RegisterScene("ngp", FlexScene("Instant-NGP"));
    const double est = EstimatedServiceMs(cluster.WarmScene("ngp"));
    const std::size_t home = cluster.router().Home("ngp");

    const SessionId session = cluster.OpenSession("ngp");
    const auto submit = [&](std::size_t k, double x) {
        SceneRequest request;
        request.scene = "ngp";
        request.arrival_ms = 1.1 * est * static_cast<double>(k);
        request.deadline_ms = 4.0 * est;
        SubmitOptions options;
        options.session = session;
        options.pose = PoseAt(x);
        return cluster.Submit(request, options);
    };

    // Smooth frames all land on the scene's home shard — sessions are
    // sticky (no p2c, no spill): coherence state lives in the home
    // replica's plan cache.
    for (std::size_t k = 0; k < 6; ++k) submit(k, 0.04 * k);
    std::vector<ClusterRenderResult> results = cluster.WaitAll();
    ASSERT_EQ(results.size(), 6u);
    for (const ClusterRenderResult& r : results) {
        EXPECT_EQ(r.shard, home);
        EXPECT_FALSE(r.spilled);
        EXPECT_EQ(r.result.status, RequestStatus::kCompleted);
    }

    // Killing the home re-homes the session with its scene: the next
    // frame replays from the last full frame (a full recompute on the
    // new home), then the trajectory resumes on the delta path there.
    cluster.KillShard(home, /*now_ms=*/1.1 * est * 6.0);
    for (std::size_t k = 6; k < 9; ++k) submit(k, 0.04 * k);
    results = cluster.WaitAll();
    ASSERT_EQ(results.size(), 3u);
    const std::size_t new_home = results.front().shard;
    EXPECT_NE(new_home, home);
    for (const ClusterRenderResult& r : results) {
        EXPECT_EQ(r.shard, new_home);
        EXPECT_EQ(r.result.status, RequestStatus::kCompleted);
    }

    const ClusterStats stats = cluster.Snapshot();
    EXPECT_EQ(stats.sessions_opened, 1u);
    EXPECT_EQ(stats.session_rehomes, 1u);
    EXPECT_EQ(stats.session_frames, 9u);
    // Full frames: the opener and the post-re-home replay; everything
    // else priced as a delta, folded across the dead shard's epoch.
    EXPECT_EQ(stats.session_full_frames, 2u);
    EXPECT_EQ(stats.delta_frames, 7u);
    EXPECT_EQ(stats.coherence_breaks, 0u);
    EXPECT_GT(stats.delta_savings_ms, 0.0);
}

}  // namespace
}  // namespace flexnerfer
