/**
 * @file
 * Unit tests for the serving front-end: LatencyHistogram percentiles vs
 * exact sorted quantiles, admission accept/reject/shed paths, the
 * priority dispatch order, per-scene prepared-frame reuse, and a
 * multi-threaded soak of the whole RenderService (TSan/ASan target).
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "accel/flexnerfer.h"
#include "common/rng.h"
#include "common/stats.h"
#include "models/workload.h"
#include "runtime/sweep_runner.h"
#include "runtime/thread_pool.h"
#include "serve/admission.h"
#include "serve/dispatch_queue.h"
#include "serve/render_service.h"
#include "serve/scene_registry.h"
#include "frame_cost_matchers.h"

namespace flexnerfer {
namespace {

SweepPoint
NgpFlexScene()
{
    SweepPoint spec;
    spec.backend = Backend::kFlexNeRFer;
    spec.precision = Precision::kInt8;
    spec.model = "Instant-NGP";
    return spec;
}

/** Serial reference for a scene spec: cold compile + execute. */
FrameCost
Reference(const std::string& model)
{
    FlexNeRFerModel::Config config;
    config.precision = Precision::kInt8;
    return FlexNeRFerModel(config).RunWorkload(BuildWorkload(model));
}

TEST(LatencyHistogram, TracksExactQuantilesWithinBucketError)
{
    // Three decades of latencies in randomized order: every reported
    // quantile must sit within the documented ~2% bucket ratio of the
    // exact order statistic computed from the sorted samples.
    Rng rng(7);
    std::vector<double> samples;
    for (int i = 0; i < 5000; ++i) {
        samples.push_back(std::pow(10.0, rng.Uniform(0.0, 3.0)));
    }
    LatencyHistogram histogram;
    for (double s : samples) histogram.Record(s);

    std::vector<double> sorted = samples;
    std::sort(sorted.begin(), sorted.end());
    for (double q : {0.01, 0.10, 0.50, 0.90, 0.99, 1.0}) {
        const auto rank = std::max<std::size_t>(
            1, static_cast<std::size_t>(
                   std::ceil(q * static_cast<double>(sorted.size()))));
        const double exact = sorted[rank - 1];
        const double estimated = histogram.Quantile(q);
        EXPECT_NEAR(estimated, exact, 0.025 * exact)
            << "q = " << q;
    }
    EXPECT_EQ(histogram.count(), samples.size());
    EXPECT_EQ(histogram.Min(), sorted.front());
    EXPECT_EQ(histogram.Max(), sorted.back());
    const double mean =
        std::accumulate(sorted.begin(), sorted.end(), 0.0) /
        static_cast<double>(sorted.size());
    EXPECT_NEAR(histogram.Mean(), mean, 1e-9 * mean);
}

TEST(LatencyHistogram, QuantileIsOrderIndependent)
{
    // The estimator is a pure function of the recorded multiset — the
    // property serving telemetry's thread-invariance rests on.
    Rng rng(11);
    std::vector<double> samples;
    for (int i = 0; i < 1000; ++i) samples.push_back(rng.Uniform(0.1, 50.0));

    LatencyHistogram forward, shuffled;
    for (double s : samples) forward.Record(s);
    std::shuffle(samples.begin(), samples.end(), rng.engine());
    for (double s : samples) shuffled.Record(s);

    for (double q : {0.5, 0.9, 0.99}) {
        EXPECT_EQ(forward.Quantile(q), shuffled.Quantile(q));
    }
}

TEST(LatencyHistogram, ConcurrentRecordsAndMerge)
{
    LatencyHistogram histogram;
    ThreadPool pool(8);
    constexpr int kPerTask = 500;
    pool.ParallelFor(16, [&histogram](std::int64_t task) {
        for (int i = 0; i < kPerTask; ++i) {
            histogram.Record(static_cast<double>(task + 1));
        }
    });
    EXPECT_EQ(histogram.count(), 16u * kPerTask);
    EXPECT_EQ(histogram.Min(), 1.0);
    EXPECT_EQ(histogram.Max(), 16.0);

    LatencyHistogram other;
    other.Record(100.0);
    other.Merge(histogram);
    EXPECT_EQ(other.count(), 16u * kPerTask + 1);
    EXPECT_EQ(other.Max(), 100.0);
    EXPECT_EQ(other.Min(), 1.0);

    histogram.Clear();
    EXPECT_EQ(histogram.count(), 0u);
    EXPECT_EQ(histogram.Quantile(0.5), 0.0);

    // Self-merge is a no-op, not a doubling.
    other.Merge(other);
    EXPECT_EQ(other.count(), 16u * kPerTask + 1);

    // Pathological samples clamp instead of hitting the float-to-int
    // UB in the bucket index: NaN/-inf to the floor, +inf to the
    // (finite) overflow bucket.
    LatencyHistogram weird;
    weird.Record(std::numeric_limits<double>::quiet_NaN());
    weird.Record(-std::numeric_limits<double>::infinity());
    weird.Record(std::numeric_limits<double>::infinity());
    EXPECT_EQ(weird.count(), 3u);
    EXPECT_EQ(weird.Min(), LatencyHistogram::kMinValue);
    EXPECT_TRUE(std::isfinite(weird.Max()));
    EXPECT_TRUE(std::isfinite(weird.Quantile(1.0)));
}

TEST(AdmissionController, AcceptsUntilQueueDepthThenRejects)
{
    AdmissionPolicy policy;
    policy.max_queue_depth = 2;
    AdmissionController admission(policy);
    using Outcome = AdmissionController::Outcome;

    // Three simultaneous arrivals, 10 ms of service each: the first two
    // occupy the virtual queue, the third bounces.
    EXPECT_EQ(admission.Admit(0.0, 10.0).outcome, Outcome::kAccepted);
    EXPECT_EQ(admission.Admit(0.0, 10.0).outcome, Outcome::kAccepted);
    EXPECT_EQ(admission.Admit(0.0, 10.0).outcome,
              Outcome::kRejectedQueueFull);

    // Once virtual work retires, capacity frees up again.
    const auto verdict = admission.Admit(15.0, 10.0);
    EXPECT_EQ(verdict.outcome, Outcome::kAccepted);
    // The device is busy until 20 ms, so this arrival waits 5 ms.
    EXPECT_EQ(verdict.start_ms, 20.0);
    EXPECT_EQ(verdict.wait_ms, 5.0);
    EXPECT_EQ(verdict.completion_ms, 30.0);

    const auto counters = admission.counters();
    EXPECT_EQ(counters.accepted, 3u);
    EXPECT_EQ(counters.rejected_queue_full, 1u);
    EXPECT_EQ(counters.busy_ms, 30.0);
    EXPECT_EQ(counters.last_completion_ms, 30.0);
}

TEST(AdmissionController, ShedsWhenEstimatedCompletionMissesDeadline)
{
    AdmissionController admission;
    using Outcome = AdmissionController::Outcome;

    // An empty device meets a feasible deadline...
    EXPECT_EQ(admission.Admit(0.0, 10.0, 15.0).outcome,
              Outcome::kAccepted);
    // ...but with 10 ms of backlog, a 12 ms deadline on a 10 ms frame
    // is infeasible (estimated completion 20 ms) and sheds on arrival.
    EXPECT_EQ(admission.Admit(0.0, 10.0, 12.0).outcome,
              Outcome::kShedDeadline);
    // A sheddable request leaves no residue: the backlog still ends at
    // 10 ms, so a 25 ms-deadline request fits.
    EXPECT_EQ(admission.Admit(0.0, 10.0, 25.0).outcome,
              Outcome::kAccepted);
    EXPECT_EQ(admission.counters().shed_deadline, 1u);
}

TEST(AdmissionController, DefaultDeadlineAppliesWhenRequestHasNone)
{
    AdmissionPolicy policy;
    policy.default_deadline_ms = 5.0;
    AdmissionController admission(policy);
    using Outcome = AdmissionController::Outcome;
    EXPECT_EQ(admission.Admit(0.0, 4.0).outcome, Outcome::kAccepted);
    // Backlog 4 ms + service 4 ms > default deadline 5 ms.
    EXPECT_EQ(admission.Admit(0.0, 4.0).outcome, Outcome::kShedDeadline);
    // An explicit per-request deadline overrides the default.
    EXPECT_EQ(admission.Admit(0.0, 4.0, 20.0).outcome,
              Outcome::kAccepted);
}

TEST(AdmissionController, SingleTierWfqReducesToLegacyFifo)
{
    // With one (implicit) tier there is nothing to weigh: the fluid
    // device serializes, and every weighted-fair verdict must be
    // bit-identical to the kFifo discipline's — the backward
    // compatibility contract of the tier rework.
    AdmissionPolicy wfq_policy;
    wfq_policy.max_queue_depth = 2;
    wfq_policy.default_deadline_ms = 40.0;
    AdmissionPolicy fifo_policy = wfq_policy;
    fifo_policy.discipline = AdmissionDiscipline::kFifo;
    AdmissionController wfq(wfq_policy);
    AdmissionController fifo(fifo_policy);

    struct Call {
        double arrival, est, deadline;
    };
    const std::vector<Call> calls = {
        {0.0, 10.0, 0.0},  {0.0, 10.0, 0.0},  {0.0, 10.0, 0.0},
        {5.0, 10.0, 18.0}, {25.0, 10.0, 0.0}, {26.0, 4.0, 30.0},
    };
    for (const Call& call : calls) {
        const auto a = wfq.Admit(call.arrival, call.est, call.deadline);
        const auto b = fifo.Admit(call.arrival, call.est, call.deadline);
        EXPECT_EQ(a.outcome, b.outcome);
        EXPECT_EQ(a.start_ms, b.start_ms);
        EXPECT_EQ(a.completion_ms, b.completion_ms);
        EXPECT_EQ(a.wait_ms, b.wait_ms);
        EXPECT_EQ(a.queue_depth, b.queue_depth);
        EXPECT_EQ(a.tier_queue_depth, b.tier_queue_depth);
        EXPECT_EQ(a.deadline_ms, b.deadline_ms);
        EXPECT_EQ(a.start_tag, b.start_tag);
        EXPECT_EQ(a.finish_tag, b.finish_tag);
    }
    const auto ca = wfq.counters();
    const auto cb = fifo.counters();
    EXPECT_EQ(ca.accepted, cb.accepted);
    EXPECT_EQ(ca.rejected_queue_full, cb.rejected_queue_full);
    EXPECT_EQ(ca.shed_deadline, cb.shed_deadline);
    EXPECT_EQ(ca.busy_ms, cb.busy_ms);
    EXPECT_EQ(ca.last_completion_ms, cb.last_completion_ms);
}

TEST(AdmissionController, WfqSplitsCapacityByWeight)
{
    // The hand-computable GPS-fluid case: tiers at weights 3 and 1.
    AdmissionPolicy policy;
    policy.max_queue_depth = 0;
    TierPolicy heavy;
    heavy.name = "heavy";
    heavy.weight = 3.0;
    TierPolicy light;
    light.name = "light";
    light.weight = 1.0;
    policy.tiers = {heavy, light};
    AdmissionController admission(policy);
    using Outcome = AdmissionController::Outcome;

    // A lone light-tier request owns the whole device: 12 ms of work
    // completes at 12 ms despite weight 1 (work-conserving, not a hard
    // 25% slice).
    const auto first = admission.Admit(0.0, 12.0, 0.0, 1);
    EXPECT_EQ(first.outcome, Outcome::kAccepted);
    EXPECT_EQ(first.start_ms, 0.0);
    EXPECT_DOUBLE_EQ(first.completion_ms, 12.0);

    // A heavy-tier request joins: both queues backlogged, so heavy
    // drains at 3/4 of the device — 12 / (3/4) = 16 ms.
    const auto second = admission.Admit(0.0, 12.0, 0.0, 0);
    EXPECT_EQ(second.outcome, Outcome::kAccepted);
    EXPECT_EQ(second.start_ms, 0.0);
    EXPECT_DOUBLE_EQ(second.completion_ms, 16.0);

    // A second light request queues behind the first: light drains at
    // 1/4 until heavy empties at 16 ms (4 ms of light done by then),
    // then at the full rate — start once the prior 12 ms drains
    // (t = 24), the remaining work finishes at 36 ms.
    const auto third = admission.Admit(0.0, 12.0, 0.0, 1);
    EXPECT_EQ(third.outcome, Outcome::kAccepted);
    EXPECT_DOUBLE_EQ(third.start_ms, 24.0);
    EXPECT_DOUBLE_EQ(third.completion_ms, 36.0);

    // WFQ virtual tags: service-per-weight, not wall time. Heavy's
    // 12 / 3 = 4 undercuts light's 12 / 1 = 12; the second light
    // request stacks on its queue's finish tag.
    EXPECT_DOUBLE_EQ(first.finish_tag, 12.0);
    EXPECT_DOUBLE_EQ(second.finish_tag, 4.0);
    EXPECT_DOUBLE_EQ(third.start_tag, 12.0);
    EXPECT_DOUBLE_EQ(third.finish_tag, 24.0);

    const auto counters = admission.counters();
    EXPECT_EQ(counters.tiers[0].busy_ms, 12.0);
    EXPECT_EQ(counters.tiers[1].busy_ms, 24.0);
}

TEST(AdmissionController, TierDefaultsResolveDeadlinesAndCapDepth)
{
    AdmissionPolicy policy;
    policy.max_queue_depth = 0;
    policy.default_deadline_ms = 100.0;
    TierPolicy strict;
    strict.name = "strict";
    strict.default_deadline_ms = 5.0;
    TierPolicy capped;
    capped.name = "capped";
    capped.max_queue_depth = 1;
    policy.tiers = {strict, capped};
    AdmissionController admission(policy);
    using Outcome = AdmissionController::Outcome;

    // The strict tier's 5 ms default beats the policy's 100 ms: 4 ms
    // fits an idle device...
    EXPECT_EQ(admission.Admit(0.0, 4.0, 0.0, 0).outcome,
              Outcome::kAccepted);
    // ...but behind 4 ms of backlog the completion (8 ms) misses it,
    // and the verdict reports the tier default it was judged against.
    const auto shed = admission.Admit(0.0, 4.0, 0.0, 0);
    EXPECT_EQ(shed.outcome, Outcome::kShedDeadline);
    EXPECT_EQ(shed.deadline_ms, 5.0);
    // An explicit per-request deadline still overrides the tier's.
    EXPECT_EQ(admission.Admit(0.0, 4.0, 50.0, 0).outcome,
              Outcome::kAccepted);

    // The capped tier has no deadline of its own, so the policy
    // default (100 ms) applies — and its depth cap of 1 bounces the
    // second in-flight request with the legacy deadline-0 verdict.
    EXPECT_EQ(admission.Admit(0.0, 4.0, 0.0, 1).outcome,
              Outcome::kAccepted);
    const auto rejected = admission.Admit(0.0, 4.0, 0.0, 1);
    EXPECT_EQ(rejected.outcome, Outcome::kRejectedQueueFull);
    EXPECT_EQ(rejected.deadline_ms, 0.0);
    EXPECT_EQ(rejected.tier_queue_depth, 1u);

    const auto counters = admission.counters();
    EXPECT_EQ(counters.tiers[0].submitted, 3u);
    EXPECT_EQ(counters.tiers[0].accepted, 2u);
    EXPECT_EQ(counters.tiers[0].shed_deadline, 1u);
    EXPECT_EQ(counters.tiers[1].submitted, 2u);
    EXPECT_EQ(counters.tiers[1].accepted, 1u);
    EXPECT_EQ(counters.tiers[1].rejected_queue_full, 1u);

    // Tiers are policy, not data: an unresolved tier index is a bug in
    // the caller, not a request to shed.
    EXPECT_DEATH(admission.Admit(0.0, 1.0, 0.0, 7), "out of range");
}

TEST(AdmissionController, WfqShieldsPaidTierFromLowTierFlood)
{
    // The starvation regression: a sustained 2x-overload flood of
    // free-tier work with a trickle of paid traffic. Under WFQ the
    // paid tier's 6/7 guaranteed share keeps its queue near-empty and
    // its tight deadline always feasible; under FIFO the shared queue
    // runs at the free tier's loose deadline depth and starves paid.
    AdmissionPolicy policy;
    policy.max_queue_depth = 0;
    TierPolicy paid;
    paid.name = "paid";
    paid.weight = 6.0;
    paid.default_deadline_ms = 10.0;
    paid.shed_budget = 0.02;
    TierPolicy free_tier;
    free_tier.name = "free";
    free_tier.weight = 1.0;
    free_tier.default_deadline_ms = 1000.0;
    free_tier.max_queue_depth = 64;
    policy.tiers = {paid, free_tier};
    AdmissionPolicy fifo_policy = policy;
    fifo_policy.discipline = AdmissionDiscipline::kFifo;

    const auto flood = [](AdmissionController& admission) {
        for (int i = 0; i < 20000; ++i) {
            const double t = 0.5 * i;  // free offered load: 2 devices
            admission.Admit(t, 1.0, 0.0, 1);
            if (i % 5 == 0) {
                admission.Admit(t, 1.0, 0.0, 0);  // paid load: 0.4
            }
        }
    };
    AdmissionController wfq(policy);
    AdmissionController fifo(fifo_policy);
    flood(wfq);
    flood(fifo);

    const auto wfq_paid = wfq.counters().tiers[0];
    const auto fifo_paid = fifo.counters().tiers[0];
    ASSERT_GT(wfq_paid.submitted, 0u);
    // WFQ: zero paid sheds — trivially within the 2% budget.
    EXPECT_EQ(wfq_paid.shed_deadline + wfq_paid.rejected_queue_full, 0u);
    // FIFO: the same paid stream starves behind the flood.
    const double fifo_shed_rate =
        static_cast<double>(fifo_paid.shed_deadline +
                            fifo_paid.rejected_queue_full) /
        static_cast<double>(fifo_paid.submitted);
    EXPECT_GT(fifo_shed_rate, 0.5);

    // WFQ is work-conserving, not capacity-reserving: the flood still
    // gets served, it just cannot displace paid work.
    EXPECT_GT(wfq.counters().tiers[1].accepted, 0u);
}

TEST(DispatchQueue, PopsByPriorityThenDeadlineThenSequence)
{
    DispatchQueue queue;
    std::vector<int> ran;
    const auto push = [&queue, &ran](int id, int priority,
                                     double deadline, std::uint64_t seq) {
        DispatchItem item;
        item.priority = priority;
        item.deadline_ms = deadline;
        item.sequence = seq;
        item.work = [&ran, id] { ran.push_back(id); };
        queue.Push(std::move(item));
    };
    push(0, 0, 0.0, 0);    // low prio, no deadline
    push(1, 2, 50.0, 1);   // high prio, late deadline
    push(2, 2, 10.0, 2);   // high prio, urgent deadline -> first
    push(3, 0, 5.0, 3);    // low prio, urgent deadline
    push(4, 0, 0.0, 4);    // low prio, no deadline, later sequence

    EXPECT_EQ(queue.size(), 5u);
    DispatchItem item;
    while (queue.Pop(&item)) item.work();
    EXPECT_EQ(ran, (std::vector<int>{2, 1, 3, 0, 4}));
    EXPECT_FALSE(queue.Pop(&item));
}

TEST(SceneRegistry, FirstTouchPreparesLaterTouchesReplay)
{
    PlanCache cache;
    SceneRegistry registry(cache);
    registry.Register("ngp", NgpFlexScene());
    EXPECT_TRUE(registry.Has("ngp"));
    EXPECT_FALSE(registry.Has("missing"));

    // First touch compiles and pins; the estimate is the executed cost.
    const auto first = registry.Touch("ngp");
    EXPECT_EQ(cache.stats().plan_misses, 1u);
    EXPECT_EQ(cache.stats().frame_hits, 0u);
    ExpectBitIdentical(first->cost, Reference("Instant-NGP"));

    // Second touch returns the same pinned entry; replaying its frame
    // hits the memoized result, not a recompile.
    const auto second = registry.Touch("ngp");
    EXPECT_EQ(second.get(), first.get());
    ExpectBitIdentical(cache.Run(second->frame), first->cost);
    EXPECT_EQ(cache.stats().plan_misses, 1u);
    EXPECT_EQ(cache.stats().frame_hits, 1u);

    const std::vector<SceneStats> stats = registry.Stats();
    ASSERT_EQ(stats.size(), 1u);
    EXPECT_EQ(stats[0].requests, 2u);
    EXPECT_EQ(stats[0].prepared_replays, 1u);
    // The recorded estimate is the critical path — what admission
    // schedules with — not the flat op sum.
    EXPECT_EQ(stats[0].est_latency_ms, EstimatedServiceMs(first->cost));
}

TEST(RenderService, SteadyStateRequestsHitThePreparedPath)
{
    ServeConfig config;
    config.threads = 2;
    RenderService service(config);
    service.RegisterScene("ngp", NgpFlexScene());

    std::vector<ServeTicket> tickets;
    for (int i = 0; i < 6; ++i) {
        SceneRequest request;
        request.scene = "ngp";
        tickets.push_back(service.Submit(request));
    }
    const FrameCost reference = Reference("Instant-NGP");
    for (ServeTicket ticket : tickets) {
        const RenderResult result = service.Wait(ticket);
        EXPECT_EQ(result.status, RequestStatus::kCompleted);
        ExpectBitIdentical(result.cost, reference);
    }

    const ServiceStats stats = service.Snapshot();
    EXPECT_EQ(stats.submitted, 6u);
    EXPECT_EQ(stats.accepted, 6u);
    EXPECT_EQ(stats.completed, 6u);
    // One compile (the first touch memoizes the frame result), so all
    // six workers replay from the memo — the steady-state path.
    EXPECT_EQ(stats.cache.plan_misses, 1u);
    EXPECT_EQ(stats.cache.frame_hits, 6u);
    ASSERT_EQ(stats.scenes.size(), 1u);
    EXPECT_EQ(stats.scenes[0].prepared_replays, 5u);
    // Back-to-back arrivals at t = 0 queue behind each other: latency
    // percentiles reflect the virtual backlog, not wall clock.
    EXPECT_GT(stats.p99_ms, stats.p50_ms);
    // The virtual device serves each request for its critical-path
    // estimate, so six back-to-back requests span 6 x that.
    const double expected_qps =
        1e3 * 6.0 / (6.0 * EstimatedServiceMs(reference));
    EXPECT_NEAR(stats.sustained_qps, expected_qps, 1e-9 * expected_qps);
}

TEST(RenderService, DeadlineAndQueueDepthPoliciesShedAndReject)
{
    ServeConfig config;
    config.threads = 2;
    config.admission.max_queue_depth = 3;
    RenderService service(config);
    service.RegisterScene("ngp", NgpFlexScene());
    const double est = EstimatedServiceMs(service.WarmScene("ngp"));

    // Simultaneous arrivals: two queue up; a backlogged infeasible
    // deadline sheds (queue depth 2 of 3, so it reaches the deadline
    // check); a third fills the queue; a fourth bounces off the depth
    // limit (depth is checked before the deadline — a full queue
    // rejects even requests that could otherwise be deadline-judged).
    SceneRequest request;
    request.scene = "ngp";
    const ServeTicket a = service.Submit(request);
    const ServeTicket b = service.Submit(request);
    SceneRequest tight = request;
    tight.deadline_ms = 0.5 * est;
    const ServeTicket c = service.Submit(tight);
    const ServeTicket d = service.Submit(request);
    const ServeTicket e = service.Submit(request);

    EXPECT_EQ(service.Wait(a).status, RequestStatus::kCompleted);
    EXPECT_EQ(service.Wait(b).status, RequestStatus::kCompleted);
    EXPECT_EQ(service.Wait(c).status, RequestStatus::kShedDeadline);
    EXPECT_EQ(service.Wait(d).status, RequestStatus::kCompleted);
    EXPECT_EQ(service.Wait(e).status, RequestStatus::kRejectedQueueFull);

    const ServiceStats stats = service.Snapshot();
    EXPECT_EQ(stats.accepted, 3u);
    EXPECT_EQ(stats.shed_deadline, 1u);
    EXPECT_EQ(stats.rejected_queue_full, 1u);
    EXPECT_DOUBLE_EQ(stats.ShedRate(), 0.4);
    ASSERT_EQ(stats.scenes.size(), 1u);
    EXPECT_EQ(stats.scenes[0].accepted, 3u);
    EXPECT_EQ(stats.scenes[0].shed, 1u);
    EXPECT_EQ(stats.scenes[0].rejected, 1u);
}

TEST(RenderService, SnapshotReportsPerTierVerdictsAndLatency)
{
    ServeConfig config;
    config.threads = 2;
    config.admission.max_queue_depth = 0;
    TierPolicy gold;
    gold.name = "gold";
    gold.weight = 4.0;
    gold.shed_budget = 0.5;
    TierPolicy bulk;
    bulk.name = "bulk";
    bulk.weight = 1.0;
    config.admission.tiers = {gold, bulk};
    RenderService service(config);
    service.RegisterScene("ngp", NgpFlexScene());
    const double est = EstimatedServiceMs(service.WarmScene("ngp"));

    const auto submit = [&service](std::size_t tier, double deadline) {
        SceneRequest request;
        request.scene = "ngp";
        request.tier = tier;
        request.deadline_ms = deadline;
        return service.Submit(request);
    };
    for (int i = 0; i < 3; ++i) submit(0, 0.0);
    for (int i = 0; i < 2; ++i) submit(1, 0.0);
    // Infeasible even on an idle device: this bulk request sheds, and
    // the result still reports the tier it was judged in.
    const RenderResult shed = service.Wait(submit(1, 0.5 * est));
    EXPECT_EQ(shed.status, RequestStatus::kShedDeadline);
    EXPECT_EQ(shed.tier, 1u);
    service.WaitAll();

    const ServiceStats stats = service.Snapshot();
    ASSERT_EQ(stats.tiers.size(), 2u);
    const TierStats& gold_row = stats.tiers[0];
    const TierStats& bulk_row = stats.tiers[1];
    EXPECT_EQ(gold_row.name, "gold");
    EXPECT_EQ(gold_row.weight, 4.0);
    EXPECT_EQ(gold_row.shed_budget, 0.5);
    EXPECT_EQ(gold_row.submitted, 3u);
    EXPECT_EQ(gold_row.accepted, 3u);
    EXPECT_EQ(gold_row.shed_deadline, 0u);
    EXPECT_EQ(gold_row.ShedRate(), 0.0);
    EXPECT_TRUE(gold_row.WithinShedBudget());
    EXPECT_EQ(bulk_row.name, "bulk");
    EXPECT_EQ(bulk_row.submitted, 3u);
    EXPECT_EQ(bulk_row.accepted, 2u);
    EXPECT_EQ(bulk_row.shed_deadline, 1u);
    EXPECT_DOUBLE_EQ(bulk_row.ShedRate(), 1.0 / 3.0);

    // Per-tier latency digests are recorded at admission, over accepted
    // requests only, and add up to the global histogram.
    EXPECT_GT(gold_row.latency.p50_ms, 0.0);
    EXPECT_GT(bulk_row.latency.p50_ms, 0.0);
    EXPECT_EQ(service.tier_latency_histogram(0).count() +
                  service.tier_latency_histogram(1).count(),
              stats.accepted);
    EXPECT_GE(stats.max_ms, std::max(gold_row.latency.max_ms,
                                     bulk_row.latency.max_ms));

    // Tier totals reconcile with the global counters.
    EXPECT_EQ(gold_row.submitted + bulk_row.submitted, stats.submitted);
    EXPECT_EQ(gold_row.accepted + bulk_row.accepted, stats.accepted);
    EXPECT_DOUBLE_EQ(gold_row.busy_ms + bulk_row.busy_ms, 5.0 * est);
}

TEST(SceneRegistry, RejectsAliasScenesAndDuplicateNames)
{
    PlanCache cache;
    SceneRegistry registry(cache);
    registry.Register("ngp", NgpFlexScene());
    // Same spec under a second name would double-count the estimation
    // run and split one frame across two stat rows — rejected outright
    // (the label is presentation only and does not de-alias).
    SweepPoint alias = NgpFlexScene();
    alias.label = "different label";
    EXPECT_DEATH(registry.Register("ngp-alias", alias),
                 "duplicates the spec");
    EXPECT_DEATH(registry.Register("ngp", NgpFlexScene()),
                 "duplicates the spec");
    // A genuinely different spec registers fine.
    SweepPoint other = NgpFlexScene();
    other.precision = Precision::kInt4;
    registry.Register("ngp-int4", other);
    EXPECT_EQ(registry.size(), 2u);

    // The guard keys on the frame the spec lowers to, not on raw spec
    // fields: the GPU model ignores precision, so two GPU scenes
    // differing only there are aliases of one frame and are rejected.
    SweepPoint gpu16 = NgpFlexScene();
    gpu16.backend = Backend::kGpu;
    gpu16.precision = Precision::kInt16;
    registry.Register("ngp-gpu", gpu16);
    SweepPoint gpu8 = gpu16;
    gpu8.precision = Precision::kInt8;
    EXPECT_DEATH(registry.Register("ngp-gpu-int8", gpu8),
                 "duplicates the spec");
}

TEST(SceneRegistry, RacingFirstTouchesConvergeToOneEntry)
{
    // Many workers touch one cold scene at once: duplicate prepares may
    // race, but exactly one compile is counted, one entry survives, and
    // every caller observes the same estimate.
    PlanCache cache;
    SceneRegistry registry(cache);
    registry.Register("ngp", NgpFlexScene());

    ThreadPool pool(8);
    std::vector<double> estimates(16, 0.0);
    pool.ParallelFor(16, [&registry, &estimates](std::int64_t i) {
        estimates[static_cast<std::size_t>(i)] =
            registry.Touch("ngp")->cost.latency_ms;
    });
    const FrameCost reference = Reference("Instant-NGP");
    for (double estimate : estimates) {
        EXPECT_EQ(estimate, reference.latency_ms);
    }
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(cache.stats().plan_misses, 1u);
    // Exactly one estimation run executed (racers serialize on the
    // per-scene mutex and adopt the winner's entry), so no touch ever
    // replays from the result memo — frame hits stay reserved for
    // actual requests.
    EXPECT_EQ(cache.stats().frame_hits, 0u);
    const std::vector<SceneStats> stats = registry.Stats();
    ASSERT_EQ(stats.size(), 1u);
    EXPECT_EQ(stats[0].requests, 16u);
    EXPECT_EQ(stats[0].prepared_replays, 15u);
}

TEST(RenderService, SnapshotIsZeroSafeWhenNothingWasAccepted)
{
    ServeConfig config;
    config.threads = 1;
    RenderService service(config);
    service.RegisterScene("ngp", NgpFlexScene());
    const double est = EstimatedServiceMs(service.WarmScene("ngp"));

    SceneRequest hopeless;
    hopeless.scene = "ngp";
    hopeless.arrival_ms = 100.0;
    hopeless.deadline_ms = 0.5 * est;  // infeasible even when idle
    EXPECT_EQ(service.Wait(service.Submit(hopeless)).status,
              RequestStatus::kShedDeadline);

    const ServiceStats stats = service.Snapshot();
    EXPECT_EQ(stats.accepted, 0u);
    EXPECT_EQ(stats.makespan_ms, 0.0);  // not -100 (no completion ever)
    EXPECT_EQ(stats.sustained_qps, 0.0);
    EXPECT_EQ(stats.utilization, 0.0);
    EXPECT_EQ(stats.p50_ms, 0.0);
}

TEST(RenderService, MultiThreadedSoakKeepsEveryInvariant)
{
    // Hammer one service from several submitter threads while its own
    // pool executes: the TSan/ASan target for the whole subsystem.
    // Admission order is nondeterministic here, so the assertions are
    // the order-free invariants.
    ServeConfig config;
    config.threads = 4;
    config.plan_cache_capacity = 2;  // force evictions under load
    config.admission.max_queue_depth = 16;
    config.admission.default_deadline_ms = 1e7;
    RenderService service(config);

    const std::vector<std::string> models = {"Instant-NGP", "KiloNeRF",
                                             "TensoRF"};
    std::vector<FrameCost> references;
    for (const std::string& model : models) {
        SweepPoint spec = NgpFlexScene();
        spec.model = model;
        service.RegisterScene(model, spec);
        references.push_back(Reference(model));
    }
    // No warm-up on purpose: first touches race between submitters, and
    // the frame-hit accounting below must stay exact regardless.

    constexpr int kThreads = 4;
    constexpr int kPerThread = 40;
    std::vector<std::thread> submitters;
    std::mutex tickets_mutex;
    std::vector<ServeTicket> tickets;
    for (int t = 0; t < kThreads; ++t) {
        submitters.emplace_back([&service, &models, &tickets,
                                 &tickets_mutex, t] {
            for (int i = 0; i < kPerThread; ++i) {
                SceneRequest request;
                request.scene = models[static_cast<std::size_t>(
                    (t + i) % static_cast<int>(models.size()))];
                request.priority = i % 3;
                request.arrival_ms = static_cast<double>(i);
                const ServeTicket ticket = service.Submit(request);
                std::lock_guard<std::mutex> lock(tickets_mutex);
                tickets.push_back(ticket);
            }
        });
    }
    for (std::thread& submitter : submitters) submitter.join();
    const std::vector<RenderResult> results = service.WaitAll();

    ASSERT_EQ(results.size(),
              static_cast<std::size_t>(kThreads * kPerThread));
    std::uint64_t completed = 0;
    for (const RenderResult& result : results) {
        if (result.status != RequestStatus::kCompleted) continue;
        ++completed;
        std::size_t m = 0;
        while (models[m] != result.scene) ++m;
        ExpectBitIdentical(result.cost, references[m]);
    }
    const ServiceStats stats = service.Snapshot();
    EXPECT_EQ(stats.submitted,
              static_cast<std::uint64_t>(kThreads * kPerThread));
    EXPECT_EQ(stats.submitted, stats.accepted + stats.rejected_queue_full +
                                   stats.shed_deadline);
    EXPECT_EQ(stats.completed, stats.accepted);
    EXPECT_EQ(completed, stats.accepted);
    // Pinned scenes ride out LRU eviction: three scenes in a
    // two-entry cache still serve every accepted request prepared.
    EXPECT_EQ(stats.cache.plan_misses, 3u);
    EXPECT_EQ(stats.cache.evictions, 1u);
    EXPECT_EQ(stats.cache.frame_hits, stats.accepted);
}

}  // namespace
}  // namespace flexnerfer
