/**
 * @file
 * Unit tests for the host-side runtime: work-stealing ThreadPool,
 * deterministic SweepRunner, and asynchronous BatchSession.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "accel/flexnerfer.h"
#include "models/workload.h"
#include "runtime/batch_session.h"
#include "runtime/sweep_runner.h"
#include "runtime/thread_pool.h"

namespace flexnerfer {
namespace {

TEST(ThreadPool, SubmitReturnsResults)
{
    ThreadPool pool(4);
    auto f1 = pool.Submit([] { return 41 + 1; });
    auto f2 = pool.Submit([] { return std::string("ok"); });
    EXPECT_EQ(f1.get(), 42);
    EXPECT_EQ(f2.get(), "ok");
}

TEST(ThreadPool, StressManySmallTasks)
{
    ThreadPool pool(8);
    constexpr int kTasks = 20000;
    std::atomic<std::int64_t> sum{0};
    std::vector<std::future<void>> futures;
    futures.reserve(kTasks);
    for (int i = 0; i < kTasks; ++i) {
        futures.push_back(pool.Submit([&sum, i] { sum.fetch_add(i); }));
    }
    for (auto& f : futures) f.get();
    EXPECT_EQ(sum.load(),
              static_cast<std::int64_t>(kTasks) * (kTasks - 1) / 2);
    EXPECT_EQ(pool.executed(), kTasks);
}

TEST(ThreadPool, DestructorDrainsPendingTasks)
{
    std::atomic<int> ran{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 256; ++i) {
            pool.Enqueue([&ran] { ran.fetch_add(1); });
        }
    }
    EXPECT_EQ(ran.load(), 256);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce)
{
    ThreadPool pool(4);
    constexpr std::int64_t kN = 4096;
    std::vector<std::atomic<int>> hits(kN);
    pool.ParallelFor(kN, [&hits](std::int64_t i) {
        hits[static_cast<std::size_t>(i)].fetch_add(1);
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForNestsWithoutDeadlock)
{
    ThreadPool pool(2);
    std::atomic<int> total{0};
    pool.ParallelFor(8, [&pool, &total](std::int64_t) {
        pool.ParallelFor(8, [&total](std::int64_t) { total.fetch_add(1); });
    });
    EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPool, WorkersStealFromLoadedQueues)
{
    // Force an imbalanced load: a producer task Submits a burst onto its
    // own worker's deque (worker-local submission policy), then blocks
    // waiting on the results. The producer's worker is parked in get(),
    // so every burst task can only run via steals by the other worker.
    ThreadPool pool(2);
    constexpr int kBurst = 32;
    std::atomic<int> ran{0};
    pool.Submit([&pool, &ran] {
          std::vector<std::future<void>> burst;
          burst.reserve(kBurst);
          for (int i = 0; i < kBurst; ++i) {
              burst.push_back(pool.Submit([&ran] { ran.fetch_add(1); }));
          }
          for (auto& f : burst) f.get();
      }).get();
    EXPECT_EQ(ran.load(), kBurst);
    EXPECT_GE(pool.steals(), kBurst);
}

TEST(ThreadPool, ParallelForPropagatesFirstException)
{
    ThreadPool pool(4);
    std::atomic<int> ran{0};
    EXPECT_THROW(
        pool.ParallelFor(256,
                         [&ran](std::int64_t i) {
                             if (i == 3) throw std::runtime_error("boom");
                             ran.fetch_add(1);
                         }),
        std::runtime_error);
    // Iterations claimed after the throw are skipped (cancellation).
    EXPECT_LT(ran.load(), 256);
}

TEST(ThreadPool, OverlapsIndependentTasks)
{
    // Latency-bound tasks overlap even on a single hardware core, so this
    // check demonstrates genuine concurrency wherever CI runs. Four 100 ms
    // sleeps on 4 threads must take far less than the 400 ms serial time.
    ThreadPool pool(4);
    const auto start = std::chrono::steady_clock::now();
    pool.ParallelFor(4, [](std::int64_t) {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
    });
    const double wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();
    EXPECT_LT(wall_ms, 350.0);
}

/** A small but non-trivial sweep grid shared by the determinism tests. */
std::vector<SweepPoint>
TestGrid()
{
    std::vector<SweepPoint> points;
    for (Backend backend : {Backend::kGpu, Backend::kNeuRex,
                            Backend::kFlexNeRFer}) {
        for (double prune : {0.0, 0.5}) {
            SweepPoint p;
            p.backend = backend;
            p.model = "Instant-NGP";
            p.params.weight_prune_ratio = prune;
            points.push_back(p);
        }
    }
    for (Precision precision : kAllPrecisions) {
        SweepPoint p;
        p.precision = precision;
        p.model = "NeRF";
        points.push_back(p);
    }
    SweepPoint all_models;
    all_models.params.scene_complexity = 1.08;
    points.push_back(all_models);
    return points;
}

/** Exact (bitwise) FrameCost comparison — determinism means identical. */
void
ExpectSameCosts(const std::vector<SweepOutcome>& a,
                const std::vector<SweepOutcome>& b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].per_model.size(), b[i].per_model.size());
        for (std::size_t m = 0; m < a[i].per_model.size(); ++m) {
            const FrameCost& x = a[i].per_model[m];
            const FrameCost& y = b[i].per_model[m];
            EXPECT_EQ(x.latency_ms, y.latency_ms);
            EXPECT_EQ(x.energy_mj, y.energy_mj);
            EXPECT_EQ(x.gemm_ms, y.gemm_ms);
            EXPECT_EQ(x.encoding_ms, y.encoding_ms);
            EXPECT_EQ(x.other_ms, y.other_ms);
            EXPECT_EQ(x.codec_ms, y.codec_ms);
            EXPECT_EQ(x.dram_ms, y.dram_ms);
            EXPECT_EQ(x.gemm_utilization, y.gemm_utilization);
        }
    }
}

TEST(SweepRunner, ResultsIndependentOfThreadCount)
{
    const std::vector<SweepPoint> grid = TestGrid();

    ThreadPool pool1(1);
    ThreadPool pool8(8);
    const SweepRunner serial(pool1);
    const SweepRunner parallel(pool8);

    const auto serial_outcomes = serial.Run(grid);
    const auto parallel_outcomes = parallel.Run(grid);
    ExpectSameCosts(serial_outcomes, parallel_outcomes);
    // And independent of scheduling noise: repeat runs are identical too.
    ExpectSameCosts(parallel.Run(grid), parallel_outcomes);
}

TEST(SweepRunner, OutcomesKeepInputOrderAndLabels)
{
    ThreadPool pool(4);
    const SweepRunner runner(pool);
    std::vector<SweepPoint> points;
    for (int i = 0; i < 16; ++i) {
        SweepPoint p;
        p.model = "Instant-NGP";
        p.label = "point-" + std::to_string(i);
        points.push_back(p);
    }
    const auto outcomes = runner.Run(points);
    ASSERT_EQ(outcomes.size(), points.size());
    for (int i = 0; i < 16; ++i) {
        EXPECT_EQ(outcomes[static_cast<std::size_t>(i)].point.label,
                  "point-" + std::to_string(i));
    }
}

TEST(SweepRunner, MapComputesInIndexOrder)
{
    ThreadPool pool(4);
    const SweepRunner runner(pool);
    const auto squares = runner.Map<std::int64_t>(
        100, [](std::int64_t i) { return i * i; });
    for (std::int64_t i = 0; i < 100; ++i) {
        EXPECT_EQ(squares[static_cast<std::size_t>(i)], i * i);
    }
}

TEST(SweepRunner, AllModelsPointMatchesRunAllModels)
{
    ThreadPool pool(4);
    const SweepRunner runner(pool);
    SweepPoint p;
    p.backend = Backend::kFlexNeRFer;
    const auto outcomes = runner.Run({p});
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_EQ(outcomes[0].per_model.size(), AllModelNames().size());
    EXPECT_GT(outcomes[0].Total().latency_ms, 0.0);
}

TEST(SweepRunner, StreamsEveryOutcomeOnceWhilePreservingFinalOrder)
{
    // The streaming overload reports each point exactly once as it
    // completes (serialized, so no locking in the callback), and the
    // final table it returns stays bit-identical to the barrier Run.
    ThreadPool pool(4);
    const SweepRunner runner(pool);
    std::vector<SweepPoint> points;
    for (int i = 0; i < 12; ++i) {
        SweepPoint p;
        p.model = "Instant-NGP";
        p.label = "point-" + std::to_string(i);
        points.push_back(p);
    }

    std::vector<int> seen(points.size(), 0);
    std::vector<SweepOutcome> streamed(points.size());
    const auto outcomes = runner.Run(
        points, [&seen, &streamed](std::size_t index,
                                   const SweepOutcome& outcome) {
            ++seen[index];
            streamed[index] = outcome;
        });

    ASSERT_EQ(outcomes.size(), points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        EXPECT_EQ(seen[i], 1);
        EXPECT_EQ(streamed[i].point.label, outcomes[i].point.label);
        ASSERT_EQ(streamed[i].per_model.size(),
                  outcomes[i].per_model.size());
        EXPECT_EQ(streamed[i].Total().latency_ms,
                  outcomes[i].Total().latency_ms);
        EXPECT_EQ(streamed[i].Total().energy_mj,
                  outcomes[i].Total().energy_mj);
    }
    // Streaming never changes the table: same grid through the
    // non-streaming overload is bit-identical.
    const auto barrier = runner.Run(points);
    for (std::size_t i = 0; i < points.size(); ++i) {
        EXPECT_EQ(barrier[i].Total().latency_ms,
                  outcomes[i].Total().latency_ms);
    }
}

TEST(MakeAccelerator, HonorsBackendAndPrecision)
{
    SweepPoint p;
    p.backend = Backend::kFlexNeRFer;
    p.precision = Precision::kInt4;
    EXPECT_EQ(MakeAccelerator(p)->name(), "FlexNeRFer (INT4)");
    p.backend = Backend::kGpu;
    EXPECT_EQ(MakeAccelerator(p)->name(), "RTX 2080 Ti");
    p.backend = Backend::kNeuRex;
    EXPECT_EQ(MakeAccelerator(p)->name(), "NeuRex");
}

TEST(BatchSession, FramesMatchSynchronousExecution)
{
    ThreadPool pool(4);
    const FlexNeRFerModel accel;
    BatchSession session(accel, pool);

    std::vector<BatchTicket> tickets;
    std::vector<FrameCost> expected;
    for (const std::string& model : AllModelNames()) {
        const NerfWorkload w = BuildWorkload(model);
        tickets.push_back(session.EnqueueFrame(w));
        expected.push_back(accel.RunWorkload(w));
    }
    for (std::size_t i = 0; i < tickets.size(); ++i) {
        const FrameCost got = session.Wait(tickets[i]);
        EXPECT_EQ(got.latency_ms, expected[i].latency_ms);
        EXPECT_EQ(got.energy_mj, expected[i].energy_mj);
    }
}

TEST(BatchSession, WaitAllReturnsEnqueueOrder)
{
    ThreadPool pool(4);
    const FlexNeRFerModel accel;
    BatchSession session(accel, pool);

    GemmEngineConfig config;
    config.compute_output = false;
    const GemmEngine engine(config);
    std::vector<FrameCost> expected;
    for (int i = 1; i <= 12; ++i) {
        const GemmShape shape{64 * i, 128, 64, 0.5, 1.0, 0.0};
        session.EnqueueGemm(engine, shape);
        const GemmResult r = engine.RunFromShape(shape);
        FrameCost c;
        c.latency_ms = r.latency_ms;
        expected.push_back(c);
    }
    const std::vector<FrameCost> got = session.WaitAll();
    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].latency_ms, expected[i].latency_ms);
    }
    EXPECT_EQ(session.enqueued(), 12u);
}

TEST(BatchSession, WaitInsidePoolTaskDoesNotDeadlock)
{
    // The enqueued frame lands on the waiting worker's own deque
    // (worker-local submission); Wait must help drain the pool rather
    // than block, or a 1-thread pool hangs forever here.
    ThreadPool pool(1);
    const FlexNeRFerModel accel;
    BatchSession session(accel, pool);
    const NerfWorkload w = BuildWorkload("Instant-NGP");
    const double latency_ms =
        pool.Submit([&session, &w] {
                const BatchTicket ticket = session.EnqueueFrame(w);
                return session.Wait(ticket).latency_ms;
            })
            .get();
    EXPECT_GT(latency_ms, 0.0);
}

TEST(BatchSession, MixedProducersFromManyThreads)
{
    ThreadPool pool(8);
    const FlexNeRFerModel accel;
    BatchSession session(accel, pool);
    const NerfWorkload w = BuildWorkload("Instant-NGP");

    // Hammer the session from several producer threads at once.
    std::vector<std::thread> producers;
    producers.reserve(4);
    for (int t = 0; t < 4; ++t) {
        producers.emplace_back([&session, &w] {
            for (int i = 0; i < 8; ++i) session.EnqueueFrame(w);
        });
    }
    for (auto& t : producers) t.join();
    const auto costs = session.WaitAll();
    ASSERT_EQ(costs.size(), 32u);
    const FrameCost reference = accel.RunWorkload(w);
    for (const FrameCost& c : costs) {
        EXPECT_EQ(c.latency_ms, reference.latency_ms);
    }
}

}  // namespace
}  // namespace flexnerfer
