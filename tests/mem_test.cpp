/**
 * @file
 * Tests for the memory-system substrates: SRAM buffers, DRAM models, and
 * the DMA engine.
 */
#include <gtest/gtest.h>

#include "mem/dma.h"
#include "mem/dram.h"
#include "mem/sram.h"

namespace flexnerfer {
namespace {

TEST(Sram, EnergyGrowsWithCapacity)
{
    const SramBuffer small({"w", 64 * 1024, 128.0});
    const SramBuffer big({"i", 2 * 1024 * 1024, 128.0});
    EXPECT_LT(small.ReadEnergyPjPerByte(), big.ReadEnergyPjPerByte());
    EXPECT_NEAR(small.ReadEnergyPjPerByte(), 0.15, 1e-9);
}

TEST(Sram, AccountsTrafficAndCycles)
{
    SramBuffer buf({"i", 1024, 128.0});
    EXPECT_DOUBLE_EQ(buf.Read(256), 2.0);
    EXPECT_DOUBLE_EQ(buf.Write(128), 1.0);
    EXPECT_EQ(buf.bytes_read(), 256);
    EXPECT_EQ(buf.bytes_written(), 128);
    EXPECT_GT(buf.EnergyPj(), 0.0);
    buf.ResetStats();
    EXPECT_EQ(buf.bytes_read(), 0);
    EXPECT_DOUBLE_EQ(buf.EnergyPj(), 0.0);
}

TEST(Sram, WriteCostsMoreThanRead)
{
    const SramBuffer buf({"o", 512 * 1024, 128.0});
    EXPECT_GT(buf.WriteEnergyPjPerByte(), buf.ReadEnergyPjPerByte());
}

TEST(Sram, CapacityCheck)
{
    const SramBuffer buf({"w", 512 * 1024, 128.0});
    EXPECT_TRUE(buf.Fits(512 * 1024));
    EXPECT_FALSE(buf.Fits(512 * 1024 + 1));
}

TEST(Dram, TransferTimeMatchesBandwidth)
{
    const DramModel lpddr3 = DramModel::Lpddr3();
    // 12.8 GB/s: 128 MB takes 10 ms of streaming.
    EXPECT_NEAR(lpddr3.TransferMs(128.0 * 1024 * 1024), 10.49, 0.2);
}

TEST(Dram, Gddr6IsMuchFaster)
{
    const DramModel gddr6 = DramModel::Gddr6Rtx2080Ti();
    const DramModel lpddr3 = DramModel::Lpddr3();
    const double bytes = 1e9;
    EXPECT_GT(lpddr3.TransferMs(bytes) / gddr6.TransferMs(bytes), 40.0);
}

TEST(Dram, EnergyScalesLinearly)
{
    const DramModel d = DramModel::Lpddr3();
    EXPECT_NEAR(d.TransferEnergyMj(1e6), 1e6 * 40.0 * 1e-9, 1e-9);
    EXPECT_DOUBLE_EQ(d.TransferEnergyMj(0.0), 0.0);
}

TEST(Dram, AccumulatesTraffic)
{
    DramModel d = DramModel::Lpddr3();
    d.Transfer(1000.0);
    d.Transfer(500.0);
    EXPECT_DOUBLE_EQ(d.total_bytes(), 1500.0);
    d.ResetStats();
    EXPECT_DOUBLE_EQ(d.total_bytes(), 0.0);
}

TEST(Dma, SetupPlusStreaming)
{
    DmaEngine dma({32.0, 16.0, 128.0});
    // Bottlenecked by the 16 B/cycle source.
    EXPECT_DOUBLE_EQ(dma.TransferCycles(1600), 32.0 + 100.0);
    dma.Transfer(1600);
    EXPECT_EQ(dma.total_bytes(), 1600);
    EXPECT_EQ(dma.transfers(), 1);
}

TEST(Dma, ZeroByteTransferCostsOnlySetup)
{
    DmaEngine dma({32.0, 16.0, 128.0});
    EXPECT_DOUBLE_EQ(dma.TransferCycles(0), 32.0);
}

}  // namespace
}  // namespace flexnerfer
