/**
 * @file
 * Unit tests for the common infrastructure: types, matrices, RNG, stats,
 * tables, and unit conversions.
 */
#include <gtest/gtest.h>

#include "common/matrix.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/types.h"
#include "common/units.h"

namespace flexnerfer {
namespace {

TEST(Types, BitWidths)
{
    EXPECT_EQ(BitWidth(Precision::kInt4), 4);
    EXPECT_EQ(BitWidth(Precision::kInt8), 8);
    EXPECT_EQ(BitWidth(Precision::kInt16), 16);
}

TEST(Types, MultiplierParallelismMatchesFig6)
{
    // Fig. 6(a): 16 fused multipliers -> 1 / 4 / 16 products.
    EXPECT_EQ(MultipliersPerMacUnit(Precision::kInt16), 1);
    EXPECT_EQ(MultipliersPerMacUnit(Precision::kInt8), 4);
    EXPECT_EQ(MultipliersPerMacUnit(Precision::kInt4), 16);
}

TEST(Types, GridScaleDoublesAsPrecisionHalves)
{
    EXPECT_EQ(GridScale(Precision::kInt16), 1);
    EXPECT_EQ(GridScale(Precision::kInt8), 2);
    EXPECT_EQ(GridScale(Precision::kInt4), 4);
}

TEST(Types, ValueRanges)
{
    EXPECT_EQ(MaxValue(Precision::kInt4), 7);
    EXPECT_EQ(MinValue(Precision::kInt4), -8);
    EXPECT_EQ(MaxValue(Precision::kInt8), 127);
    EXPECT_EQ(MinValue(Precision::kInt8), -128);
    EXPECT_EQ(MaxValue(Precision::kInt16), 32767);
    EXPECT_EQ(MinValue(Precision::kInt16), -32768);
}

TEST(Types, RoundTripNames)
{
    for (Precision p : kAllPrecisions) {
        EXPECT_EQ(BitWidth(PrecisionFromString(
                      p == Precision::kInt4   ? "int4"
                      : p == Precision::kInt8 ? "int8"
                                              : "int16")),
                  BitWidth(p));
    }
    EXPECT_EQ(ToString(SparsityFormat::kBitmap), "Bitmap");
    EXPECT_EQ(ToString(Dataflow::kMulticast), "multicast");
}

TEST(Matrix, BasicAccess)
{
    MatrixI m(3, 4);
    EXPECT_EQ(m.rows(), 3);
    EXPECT_EQ(m.cols(), 4);
    EXPECT_EQ(m.size(), 12u);
    m.at(2, 3) = 7;
    EXPECT_EQ(m.at(2, 3), 7);
    EXPECT_EQ(m.Nnz(), 1u);
}

TEST(Matrix, DensityAndSparsity)
{
    MatrixI m(2, 2);
    m.at(0, 0) = 1;
    m.at(1, 1) = -3;
    EXPECT_DOUBLE_EQ(m.Density(), 0.5);
    EXPECT_DOUBLE_EQ(m.Sparsity(), 0.5);
}

TEST(Matrix, RandomSparseMatrixHitsTargetSparsity)
{
    Rng rng(42);
    const MatrixI m =
        MakeSparseMatrix(128, 128, 0.7, Precision::kInt8, rng);
    EXPECT_NEAR(m.Sparsity(), 0.7, 0.05);
    for (int r = 0; r < m.rows(); ++r) {
        for (int c = 0; c < m.cols(); ++c) {
            EXPECT_GE(m.at(r, c), MinValue(Precision::kInt8));
            EXPECT_LE(m.at(r, c), MaxValue(Precision::kInt8));
        }
    }
}

TEST(Matrix, ReferenceGemmHandComputed)
{
    MatrixI a(2, 3);
    MatrixI b(3, 2);
    // a = [1 2 3; 4 5 6], b = [7 8; 9 10; 11 12]
    int v = 1;
    for (int r = 0; r < 2; ++r)
        for (int c = 0; c < 3; ++c) a.at(r, c) = v++;
    for (int r = 0; r < 3; ++r)
        for (int c = 0; c < 2; ++c) b.at(r, c) = v++;
    const auto c = ReferenceGemm(a, b);
    EXPECT_EQ(c.at(0, 0), 58);
    EXPECT_EQ(c.at(0, 1), 64);
    EXPECT_EQ(c.at(1, 0), 139);
    EXPECT_EQ(c.at(1, 1), 154);
}

TEST(Rng, Deterministic)
{
    Rng a(7);
    Rng b(7);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.UniformInt(0, 1000), b.UniformInt(0, 1000));
    }
}

TEST(Rng, UniformRange)
{
    Rng rng(3);
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.Uniform(2.0, 5.0);
        EXPECT_GE(x, 2.0);
        EXPECT_LT(x, 5.0);
    }
}

TEST(Stats, AddGetMerge)
{
    StatSet s;
    s.Add("noc.hops", 10);
    s.Add("noc.hops", 5);
    EXPECT_DOUBLE_EQ(s.Get("noc.hops"), 15.0);
    EXPECT_DOUBLE_EQ(s.Get("missing"), 0.0);

    StatSet t;
    t.Add("noc.hops", 1);
    t.Add("sram.bytes", 2);
    s.Merge(t);
    EXPECT_DOUBLE_EQ(s.Get("noc.hops"), 16.0);
    EXPECT_DOUBLE_EQ(s.Get("sram.bytes"), 2.0);
}

TEST(Table, RendersAlignedColumns)
{
    Table t({"name", "value"});
    t.AddRow({"alpha", "1"});
    t.AddRow({"b", "22"});
    const std::string s = t.ToString();
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_NE(s.find("22"), std::string::npos);
    EXPECT_EQ(t.NumRows(), 2u);
}

TEST(Table, CsvOutput)
{
    Table t({"a", "b"});
    t.AddRow({"1", "2"});
    EXPECT_EQ(t.ToCsv(), "a,b\n1,2\n");
}

TEST(Units, CycleConversionsRoundTrip)
{
    const double cycles = 123456.0;
    const double ms = CyclesToMs(cycles, 0.8);
    EXPECT_NEAR(MsToCycles(ms, 0.8), cycles, 1e-6);
}

TEST(Units, TopsFromOpsPerCycle)
{
    // 64x64 INT16 array at 0.8 GHz: 2*4096*0.8e9 = 6.55 TOPS.
    EXPECT_NEAR(TopsFromOpsPerCycle(2.0 * 4096, 0.8), 6.5536, 1e-3);
}

TEST(Units, RunCostAccumulation)
{
    RunCost a;
    a.cycles = 100;
    a.mac_ops = 10;
    a.utilization = 1.0;
    RunCost b;
    b.cycles = 50;
    b.mac_ops = 30;
    b.utilization = 0.5;
    a += b;
    EXPECT_DOUBLE_EQ(a.cycles, 150.0);
    EXPECT_DOUBLE_EQ(a.mac_ops, 40.0);
    EXPECT_NEAR(a.utilization, (1.0 * 10 + 0.5 * 30) / 40.0, 1e-12);
}

TEST(Units, PpaBreakdownTotals)
{
    PpaBreakdown b;
    b.components.push_back({"mac", 10.0, 2.0});
    b.components.push_back({"noc", 5.0, 1.0});
    EXPECT_DOUBLE_EQ(b.TotalAreaMm2(), 15.0);
    EXPECT_DOUBLE_EQ(b.TotalPowerW(), 3.0);
}

}  // namespace
}  // namespace flexnerfer
