/**
 * @file
 * Unit tests for the sharded serving layer: rendezvous routing (ranking
 * determinism and the minimal-movement property), side-effect-free
 * admission probes, spill mechanics (surcharge, pinning, counters), the
 * thread-count determinism of the whole cluster at 1/2/4/8 shards, the
 * per-shard "frame hits == accepted" invariant under spills, histogram
 * merge bounds, and drain/rebalance.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "runtime/sweep_runner.h"
#include "serve/admission.h"
#include "serve/cluster.h"
#include "serve/shard_router.h"
#include "frame_cost_matchers.h"

namespace flexnerfer {
namespace {

SweepPoint
FlexScene(const std::string& model)
{
    SweepPoint spec;
    spec.backend = Backend::kFlexNeRFer;
    spec.precision = Precision::kInt8;
    spec.model = model;
    return spec;
}

std::vector<std::string>
SceneNames(std::size_t count)
{
    std::vector<std::string> names;
    for (std::size_t i = 0; i < count; ++i) {
        names.push_back("scene-" + std::to_string(i));
    }
    return names;
}

TEST(ShardRouter, RankIsAStableHomeLedPermutation)
{
    const ShardRouter router(8);
    for (const std::string& scene : SceneNames(50)) {
        const std::vector<std::size_t> rank = router.Rank(scene);
        ASSERT_EQ(rank.size(), 8u);
        // A permutation of 0..7, led by the home shard, in strictly
        // descending weight order.
        std::set<std::size_t> unique(rank.begin(), rank.end());
        EXPECT_EQ(unique.size(), 8u);
        EXPECT_EQ(rank.front(), router.Home(scene));
        for (std::size_t i = 1; i < rank.size(); ++i) {
            EXPECT_GE(ShardRouter::Weight(scene, rank[i - 1]),
                      ShardRouter::Weight(scene, rank[i]));
        }
        // Stable across calls and router instances.
        EXPECT_EQ(rank, ShardRouter(8).Rank(scene));
    }
}

TEST(ShardRouter, SpreadsScenesAcrossShards)
{
    // Not a statistical test — just that rendezvous hashing does not
    // degenerate (every shard homes something, given enough scenes).
    const ShardRouter router(4);
    std::vector<std::size_t> homed(4, 0);
    for (const std::string& scene : SceneNames(200)) {
        ++homed[router.Home(scene)];
    }
    for (std::size_t shard = 0; shard < 4; ++shard) {
        EXPECT_GT(homed[shard], 0u) << "shard " << shard;
    }
}

TEST(ShardRouter, ResizeMovesTheProvableMinimum)
{
    const std::vector<std::string> scenes = SceneNames(300);
    // Growing N -> N+1: a scene moves iff its new top weight is on the
    // added shard — so every moved scene's new home IS the new shard.
    for (std::size_t n = 1; n <= 8; ++n) {
        const ShardRouter before(n);
        const ShardRouter after(n + 1);
        for (const std::string& scene : scenes) {
            const std::size_t old_home = before.Home(scene);
            const std::size_t new_home = after.Home(scene);
            if (new_home != old_home) {
                EXPECT_EQ(new_home, n);
            }
        }
    }
    // Shrinking N -> M: survivors' weights are untouched, so only
    // scenes homed on removed shards move.
    const ShardRouter eight(8);
    const ShardRouter three(3);
    for (const std::string& scene : scenes) {
        if (eight.Home(scene) < 3) {
            EXPECT_EQ(three.Home(scene), eight.Home(scene));
        }
    }
}

TEST(AdmissionController, ProbeMatchesAdmitAndHasNoSideEffects)
{
    AdmissionPolicy policy;
    policy.max_queue_depth = 3;
    policy.default_deadline_ms = 50.0;
    AdmissionController admission(policy);

    // Mixed accept/shed/reject sequence: before every Admit, a Probe
    // with the same arguments returns the identical verdict, and the
    // probe moves nothing (counters are bit-identical to a probe-free
    // run of the same sequence).
    struct Call {
        double arrival, est, deadline;
    };
    const std::vector<Call> calls = {
        {0.0, 10.0, 0.0},  {0.0, 10.0, 0.0},   {0.0, 10.0, 15.0},
        {0.0, 10.0, 0.0},  {0.0, 10.0, 100.0}, {5.0, 10.0, 0.0},
        {40.0, 10.0, 0.0}, {40.0, 5.0, 12.0},
    };
    AdmissionController reference(policy);
    for (const Call& call : calls) {
        const auto probed =
            admission.Probe(call.arrival, call.est, call.deadline);
        // Probing twice changes nothing either.
        const auto probed_again =
            admission.Probe(call.arrival, call.est, call.deadline);
        const auto admitted =
            admission.Admit(call.arrival, call.est, call.deadline);
        EXPECT_EQ(probed.outcome, admitted.outcome);
        EXPECT_EQ(probed.outcome, probed_again.outcome);
        EXPECT_EQ(probed.arrival_ms, admitted.arrival_ms);
        EXPECT_EQ(probed.start_ms, admitted.start_ms);
        EXPECT_EQ(probed.completion_ms, admitted.completion_ms);
        EXPECT_EQ(probed.wait_ms, admitted.wait_ms);
        EXPECT_EQ(probed.queue_depth, admitted.queue_depth);
        EXPECT_EQ(probed.deadline_ms, admitted.deadline_ms);
        reference.Admit(call.arrival, call.est, call.deadline);
    }
    const auto probed_counters = admission.counters();
    const auto reference_counters = reference.counters();
    EXPECT_EQ(probed_counters.accepted, reference_counters.accepted);
    EXPECT_EQ(probed_counters.rejected_queue_full,
              reference_counters.rejected_queue_full);
    EXPECT_EQ(probed_counters.shed_deadline,
              reference_counters.shed_deadline);
    EXPECT_EQ(probed_counters.busy_ms, reference_counters.busy_ms);
    EXPECT_EQ(probed_counters.last_completion_ms,
              reference_counters.last_completion_ms);
}

/** Three-tier WFQ policy shared by the tiered tests below. */
std::vector<TierPolicy>
DeterminismTiers()
{
    TierPolicy vip;
    vip.name = "vip";
    vip.weight = 4.0;
    TierPolicy mid;
    mid.name = "mid";
    mid.weight = 2.0;
    TierPolicy bulk;
    bulk.name = "bulk";
    bulk.weight = 1.0;
    return {vip, mid, bulk};
}

TEST(AdmissionController, TieredProbeMatchesAdmit)
{
    // The router's spill decisions hang on Probe/Admit agreement, now
    // across weighted tier queues: same drain, same fluid pricing,
    // same tags, for every tier.
    AdmissionPolicy policy;
    policy.max_queue_depth = 6;
    policy.tiers = DeterminismTiers();
    policy.tiers[0].default_deadline_ms = 25.0;
    policy.tiers[2].max_queue_depth = 2;
    AdmissionController admission(policy);

    struct Call {
        double arrival, est, deadline;
        std::size_t tier;
    };
    const std::vector<Call> calls = {
        {0.0, 10.0, 0.0, 2},  {0.0, 10.0, 0.0, 0},  {0.0, 10.0, 0.0, 1},
        {0.0, 10.0, 0.0, 2},  {0.0, 10.0, 0.0, 2},  {5.0, 10.0, 0.0, 0},
        {12.0, 8.0, 30.0, 1}, {30.0, 10.0, 0.0, 2}, {31.0, 4.0, 9.0, 0},
    };
    for (const Call& call : calls) {
        const auto probed = admission.Probe(call.arrival, call.est,
                                            call.deadline, call.tier);
        const auto admitted = admission.Admit(call.arrival, call.est,
                                              call.deadline, call.tier);
        EXPECT_EQ(probed.outcome, admitted.outcome);
        EXPECT_EQ(probed.tier, admitted.tier);
        EXPECT_EQ(probed.start_ms, admitted.start_ms);
        EXPECT_EQ(probed.completion_ms, admitted.completion_ms);
        EXPECT_EQ(probed.wait_ms, admitted.wait_ms);
        EXPECT_EQ(probed.queue_depth, admitted.queue_depth);
        EXPECT_EQ(probed.tier_queue_depth, admitted.tier_queue_depth);
        EXPECT_EQ(probed.deadline_ms, admitted.deadline_ms);
        EXPECT_EQ(probed.start_tag, admitted.start_tag);
        EXPECT_EQ(probed.finish_tag, admitted.finish_tag);
    }
    // The sequence exercised every verdict path across the tiers.
    const auto counters = admission.counters();
    std::uint64_t rejected = 0, shed = 0;
    for (const auto& tier : counters.tiers) {
        rejected += tier.rejected_queue_full;
        shed += tier.shed_deadline;
    }
    EXPECT_GT(rejected, 0u);
    EXPECT_GT(shed, 0u);
}

TEST(LatencyHistogram, MergeMatchesConcatenationWithinBucketBound)
{
    // Merged-vs-concatenated: folding two histograms must equal
    // recording the concatenated samples into one (bucket counts add),
    // and both must sit within the documented ~2% of the exact sorted
    // quantiles of the concatenation.
    Rng rng(23);
    std::vector<double> left, right;
    for (int i = 0; i < 3000; ++i) {
        left.push_back(std::pow(10.0, rng.Uniform(0.0, 2.0)));
    }
    for (int i = 0; i < 1500; ++i) {
        right.push_back(std::pow(10.0, rng.Uniform(1.0, 3.0)));
    }
    LatencyHistogram a, b, concatenated;
    for (double s : left) {
        a.Record(s);
        concatenated.Record(s);
    }
    for (double s : right) {
        b.Record(s);
        concatenated.Record(s);
    }
    LatencyHistogram merged;
    merged.Merge(a);
    merged.Merge(b);

    std::vector<double> sorted = left;
    sorted.insert(sorted.end(), right.begin(), right.end());
    std::sort(sorted.begin(), sorted.end());
    for (double q : {0.01, 0.10, 0.50, 0.90, 0.99, 1.0}) {
        EXPECT_EQ(merged.Quantile(q), concatenated.Quantile(q)) << q;
        const auto rank = std::max<std::size_t>(
            1, static_cast<std::size_t>(
                   std::ceil(q * static_cast<double>(sorted.size()))));
        const double exact = sorted[rank - 1];
        EXPECT_NEAR(merged.Quantile(q), exact, 0.025 * exact) << q;
    }
    EXPECT_EQ(merged.count(), sorted.size());
    EXPECT_EQ(merged.Min(), sorted.front());
    EXPECT_EQ(merged.Max(), sorted.back());
    EXPECT_NEAR(merged.Mean(), concatenated.Mean(), 1e-12);
}

TEST(LatencyHistogram, MergeEdgeCasesEmptyAndSingleton)
{
    // Empty into empty: still empty.
    LatencyHistogram empty_a, empty_b;
    empty_a.Merge(empty_b);
    EXPECT_EQ(empty_a.count(), 0u);
    EXPECT_EQ(empty_a.Quantile(0.5), 0.0);

    // Empty into nonempty: unchanged (including exact min/max).
    LatencyHistogram single;
    single.Record(7.0);
    single.Merge(empty_b);
    EXPECT_EQ(single.count(), 1u);
    EXPECT_EQ(single.Min(), 7.0);
    EXPECT_EQ(single.Max(), 7.0);
    EXPECT_EQ(single.Quantile(0.5), 7.0);

    // Nonempty into empty: adopts the source exactly.
    LatencyHistogram adopted;
    adopted.Merge(single);
    EXPECT_EQ(adopted.count(), 1u);
    EXPECT_EQ(adopted.Min(), 7.0);
    EXPECT_EQ(adopted.Max(), 7.0);
    EXPECT_EQ(adopted.Quantile(0.01), 7.0);
    EXPECT_EQ(adopted.Quantile(1.0), 7.0);

    // Singleton into singleton: count 2, exact extremes.
    LatencyHistogram other;
    other.Record(3.0);
    other.Merge(single);
    EXPECT_EQ(other.count(), 2u);
    EXPECT_EQ(other.Min(), 3.0);
    EXPECT_EQ(other.Max(), 7.0);
    EXPECT_EQ(other.sum(), 10.0);
}

TEST(ShardedRenderService, SpillPaysRecompileOnceAndKeepsInvariants)
{
    // One scene, two shards, a queue deep enough that the deadline is
    // the binding constraint. With estimate E and deadline 2.5E, the
    // home accepts until its backlog reaches 2E; the next request
    // spills to the other shard, paying the recompile surcharge
    // (factor 1.0 -> E) exactly once — later spills find the pin.
    ClusterConfig config;
    config.shards = 2;
    config.threads_per_shard = 2;
    config.spill_recompile_factor = 1.0;
    ShardedRenderService cluster(config);
    cluster.RegisterScene("ngp", FlexScene("Instant-NGP"));
    const double est = EstimatedServiceMs(cluster.WarmScene("ngp"));
    const std::size_t home = cluster.router().Home("ngp");
    const std::size_t other = 1 - home;

    std::vector<ClusterTicket> tickets;
    for (int i = 0; i < 6; ++i) {
        SceneRequest request;
        request.scene = "ngp";
        request.arrival_ms = 0.0;
        request.deadline_ms = 2.5 * est;
        tickets.push_back(cluster.Submit(request));
    }
    std::vector<ClusterRenderResult> results;
    results.reserve(tickets.size());
    for (const ClusterTicket ticket : tickets) {
        results.push_back(cluster.Wait(ticket));
    }

    // Home absorbs 0..1 (completion E, 2E); 2 would complete at 3E >
    // 2.5E, so it spills cold: surcharge E, completion E + E = 2E on
    // the idle shard. 3 spills warm (no surcharge, completion 3E >
    // 2.5E? no: backlog 2E + E = 3E > 2.5E -> the spill shard now also
    // sheds), so 3+ shed at home after failing every candidate.
    EXPECT_EQ(results[0].shard, home);
    EXPECT_FALSE(results[0].spilled);
    EXPECT_EQ(results[1].shard, home);
    EXPECT_EQ(results[2].shard, other);
    EXPECT_TRUE(results[2].spilled);
    EXPECT_EQ(results[2].spill_surcharge_ms, est);
    EXPECT_EQ(results[2].result.status, RequestStatus::kCompleted);
    // Virtual latency includes the surcharge: idle shard, so 2E.
    EXPECT_DOUBLE_EQ(results[2].result.latency_ms, 2.0 * est);
    // The next spill would find the pin (no surcharge), but the spill
    // shard's backlog is now 2E: completion 3E > 2.5E, so it sheds at
    // home instead.
    EXPECT_EQ(results[3].result.status, RequestStatus::kShedDeadline);
    EXPECT_FALSE(results[3].spilled);
    EXPECT_EQ(results[3].shard, home);

    const ClusterStats stats = cluster.Snapshot();
    EXPECT_EQ(stats.accepted, 3u);
    EXPECT_EQ(stats.spilled, 1u);
    EXPECT_EQ(stats.spill_recompiles, 1u);
    EXPECT_EQ(stats.shed_deadline, 3u);
    EXPECT_EQ(stats.per_shard[home].spill_out, 1u);
    EXPECT_EQ(stats.per_shard[other].spill_in, 1u);
    EXPECT_EQ(stats.per_shard[other].spill_recompiles, 1u);
    // The prepared-path invariant holds on both shards, spills and all.
    for (const ShardTelemetry& shard : stats.per_shard) {
        EXPECT_EQ(shard.service.cache.frame_hits, shard.service.accepted);
    }
    // Completed requests replay bit-identically wherever they ran.
    for (const ClusterRenderResult& r : results) {
        if (r.result.status == RequestStatus::kCompleted) {
            ExpectBitIdentical(r.result.cost, results[0].result.cost);
        }
    }
}

TEST(ShardedRenderService, WarmSpillPaysNoSurcharge)
{
    // Once a spill pinned the scene on a shard, later spills there are
    // surcharge-free. Same setup, but requests arrive spaced so the
    // spill shard drains between bursts.
    ClusterConfig config;
    config.shards = 2;
    config.threads_per_shard = 1;
    config.spill_recompile_factor = 1.0;
    ShardedRenderService cluster(config);
    cluster.RegisterScene("ngp", FlexScene("Instant-NGP"));
    const double est = EstimatedServiceMs(cluster.WarmScene("ngp"));

    const auto burst = [&cluster, est](double arrival) {
        std::vector<ClusterRenderResult> results;
        for (int i = 0; i < 3; ++i) {
            SceneRequest request;
            request.scene = "ngp";
            request.arrival_ms = arrival;
            request.deadline_ms = 2.5 * est;
            results.push_back(cluster.Wait(cluster.Submit(request)));
        }
        return results;
    };
    const auto first = burst(0.0);
    EXPECT_TRUE(first[2].spilled);
    EXPECT_EQ(first[2].spill_surcharge_ms, est);
    // Far later (everything drained): the same pattern spills again,
    // but the pin is warm now — no recompile surcharge.
    const auto second = burst(100.0 * est);
    EXPECT_TRUE(second[2].spilled);
    EXPECT_EQ(second[2].spill_surcharge_ms, 0.0);
    // (100E + E) - 100E reassociates: exact up to rounding only.
    EXPECT_NEAR(second[2].result.latency_ms, est, 1e-9 * est);

    const ClusterStats stats = cluster.Snapshot();
    EXPECT_EQ(stats.spilled, 2u);
    EXPECT_EQ(stats.spill_recompiles, 1u);
}

/** Fixed mixed-scene request schedule used by the determinism tests. */
std::vector<SceneRequest>
FixedSchedule(const std::vector<std::string>& scenes,
              const std::vector<double>& est_ms, double mean_est_ms,
              std::size_t requests)
{
    Rng rng(99);
    std::vector<SceneRequest> schedule;
    double arrival = 0.0;
    const double mean_interarrival = mean_est_ms / 2.5;  // overloaded
    for (std::size_t i = 0; i < requests; ++i) {
        arrival += -mean_interarrival *
                   std::log(1.0 - rng.Uniform(0.0, 1.0));
        const auto scene = static_cast<std::size_t>(rng.UniformInt(
            0, static_cast<std::int64_t>(scenes.size()) - 1));
        SceneRequest request;
        request.scene = scenes[scene];
        request.arrival_ms = arrival;
        request.tier = static_cast<std::size_t>(rng.UniformInt(0, 2));
        request.priority = static_cast<int>(rng.UniformInt(0, 2));
        request.deadline_ms = 1.5 * est_ms[scene] +
                              mean_est_ms * rng.Uniform(0.0, 4.0);
        schedule.push_back(std::move(request));
    }
    return schedule;
}

struct ClusterRun {
    std::vector<ClusterRenderResult> results;
    ClusterStats stats;
};

ClusterRun
RunCluster(std::size_t shards, int threads_per_shard,
           const std::vector<std::string>& scenes,
           const std::vector<SceneRequest>& schedule)
{
    ClusterConfig config;
    config.shards = shards;
    config.threads_per_shard = threads_per_shard;
    config.plan_cache_capacity = 4;  // bounded: pins must survive LRU
    config.admission.max_queue_depth = 8;
    config.admission.tiers = DeterminismTiers();
    ShardedRenderService cluster(config);
    for (const std::string& scene : scenes) {
        cluster.RegisterScene(scene, FlexScene(scene));
    }
    for (const std::string& scene : scenes) cluster.WarmScene(scene);
    std::vector<ClusterTicket> tickets;
    tickets.reserve(schedule.size());
    for (const SceneRequest& request : schedule) {
        tickets.push_back(cluster.Submit(request));
    }
    ClusterRun run;
    run.results = cluster.WaitAll();
    run.stats = cluster.Snapshot();
    return run;
}

TEST(ShardedRenderService, DeterministicAcrossThreadCountsAndInvariant)
{
    // The acceptance-criteria test: for a fixed tiered submission
    // sequence under the three-queue WFQ policy, every verdict, routed
    // shard, spill decision, surcharge, latency, per-shard counter,
    // per-tier counter, and merged percentile is bit-identical for
    // --threads 1 vs 8, at every shard count; and per-shard frame hits
    // == accepted (spill recompiles are explicit plan misses, never
    // phantom hits) at 1, 2, 4, and 8 shards.
    const std::vector<std::string> scenes = {
        "Instant-NGP", "KiloNeRF", "TensoRF", "NeRF", "NSVF"};
    std::vector<double> est_ms;
    double mean_est = 0.0;
    {
        // One throwaway cluster just to learn the estimates.
        ClusterConfig config;
        config.shards = 1;
        config.threads_per_shard = 1;
        ShardedRenderService probe(config);
        for (const std::string& scene : scenes) {
            probe.RegisterScene(scene, FlexScene(scene));
            est_ms.push_back(EstimatedServiceMs(probe.WarmScene(scene)));
            mean_est += est_ms.back();
        }
        mean_est /= static_cast<double>(scenes.size());
    }
    const std::vector<SceneRequest> schedule =
        FixedSchedule(scenes, est_ms, mean_est, 160);

    for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
        const ClusterRun serial = RunCluster(shards, 1, scenes, schedule);
        const ClusterRun parallel =
            RunCluster(shards, 8, scenes, schedule);

        ASSERT_EQ(serial.results.size(), schedule.size());
        ASSERT_EQ(parallel.results.size(), schedule.size());
        for (std::size_t i = 0; i < schedule.size(); ++i) {
            const ClusterRenderResult& a = serial.results[i];
            const ClusterRenderResult& b = parallel.results[i];
            EXPECT_EQ(a.result.status, b.result.status) << i;
            EXPECT_EQ(a.shard, b.shard) << i;
            EXPECT_EQ(a.home_shard, b.home_shard) << i;
            EXPECT_EQ(a.spilled, b.spilled) << i;
            EXPECT_EQ(a.spill_surcharge_ms, b.spill_surcharge_ms) << i;
            EXPECT_EQ(a.result.tier, b.result.tier) << i;
            EXPECT_EQ(a.result.latency_ms, b.result.latency_ms) << i;
            EXPECT_EQ(a.result.queue_wait_ms, b.result.queue_wait_ms)
                << i;
        }
        const ClusterStats& sa = serial.stats;
        const ClusterStats& sb = parallel.stats;
        EXPECT_EQ(sa.accepted, sb.accepted);
        EXPECT_EQ(sa.rejected_queue_full, sb.rejected_queue_full);
        EXPECT_EQ(sa.shed_deadline, sb.shed_deadline);
        EXPECT_EQ(sa.spilled, sb.spilled);
        EXPECT_EQ(sa.spill_recompiles, sb.spill_recompiles);
        EXPECT_EQ(sa.p50_ms, sb.p50_ms);
        EXPECT_EQ(sa.p90_ms, sb.p90_ms);
        EXPECT_EQ(sa.p99_ms, sb.p99_ms);
        EXPECT_EQ(sa.mean_ms, sb.mean_ms);
        EXPECT_EQ(sa.max_ms, sb.max_ms);
        EXPECT_EQ(sa.sustained_qps, sb.sustained_qps);
        EXPECT_EQ(sa.utilization, sb.utilization);

        // Per-tier telemetry — counters and merged latency digests —
        // is part of the determinism contract too.
        ASSERT_EQ(sa.tiers.size(), 3u);
        ASSERT_EQ(sb.tiers.size(), 3u);
        for (std::size_t t = 0; t < sa.tiers.size(); ++t) {
            EXPECT_EQ(sa.tiers[t].submitted, sb.tiers[t].submitted) << t;
            EXPECT_EQ(sa.tiers[t].accepted, sb.tiers[t].accepted) << t;
            EXPECT_EQ(sa.tiers[t].shed_deadline,
                      sb.tiers[t].shed_deadline)
                << t;
            EXPECT_EQ(sa.tiers[t].rejected_queue_full,
                      sb.tiers[t].rejected_queue_full)
                << t;
            EXPECT_EQ(sa.tiers[t].busy_ms, sb.tiers[t].busy_ms) << t;
            EXPECT_EQ(sa.tiers[t].latency.p50_ms,
                      sb.tiers[t].latency.p50_ms)
                << t;
            EXPECT_EQ(sa.tiers[t].latency.p99_ms,
                      sb.tiers[t].latency.p99_ms)
                << t;
        }

        // The sequence must actually exercise the machinery to prove
        // anything: overload sheds at every count; spills need a 2nd
        // shard.
        EXPECT_GT(sa.shed_deadline + sa.rejected_queue_full, 0u);
        if (shards > 1) {
            EXPECT_GT(sa.spilled, 0u);
        }

        EXPECT_EQ(sa.completed, sa.accepted);
        ASSERT_EQ(sa.per_shard.size(), shards);
        for (std::size_t i = 0; i < shards; ++i) {
            EXPECT_EQ(sa.per_shard[i].service.cache.frame_hits,
                      sa.per_shard[i].service.accepted)
                << "shard " << i << " of " << shards;
            EXPECT_EQ(sa.per_shard[i].homed, sb.per_shard[i].homed);
            EXPECT_EQ(sa.per_shard[i].spill_in, sb.per_shard[i].spill_in);
            EXPECT_EQ(sa.per_shard[i].spill_out,
                      sb.per_shard[i].spill_out);
        }
    }
}

TEST(ShardedRenderService, ResizeDrainsRebalancesAndKeepsTelemetry)
{
    const std::vector<std::string> scenes = {"Instant-NGP", "KiloNeRF",
                                             "TensoRF", "NeRF"};
    ClusterConfig config;
    config.shards = 3;
    config.threads_per_shard = 2;
    ShardedRenderService cluster(config);
    for (const std::string& scene : scenes) {
        cluster.RegisterScene(scene, FlexScene(scene));
        cluster.WarmScene(scene);
    }

    // Outstanding tickets at resize time must survive the drain.
    std::vector<ClusterTicket> tickets;
    for (int i = 0; i < 8; ++i) {
        SceneRequest request;
        request.scene = scenes[static_cast<std::size_t>(i) %
                               scenes.size()];
        request.arrival_ms = static_cast<double>(i);
        tickets.push_back(cluster.Submit(request));
    }
    const ClusterStats before = cluster.Snapshot();
    EXPECT_EQ(before.submitted, 8u);

    // The moved count is exactly what the routers predict, and HRW
    // keeps every survivor-homed scene in place on both directions.
    const std::size_t moved = cluster.Resize(5);
    const ShardRouter old_router(3);
    const ShardRouter new_router(5);
    std::size_t expected_moved = 0;
    for (const std::string& scene : scenes) {
        if (old_router.Home(scene) != new_router.Home(scene)) {
            ++expected_moved;
            EXPECT_GE(new_router.Home(scene), 3u);  // to an added shard
        }
    }
    EXPECT_EQ(moved, expected_moved);
    EXPECT_EQ(cluster.shards(), 5u);

    // Tickets issued before the resize still resolve.
    for (const ClusterTicket ticket : tickets) {
        const ClusterRenderResult result = cluster.Wait(ticket);
        EXPECT_EQ(result.result.status, RequestStatus::kCompleted);
    }

    // Lifetime telemetry survived the replica swap...
    const ClusterStats after = cluster.Snapshot();
    EXPECT_EQ(after.submitted, 8u);
    EXPECT_EQ(after.accepted, before.accepted);
    EXPECT_EQ(after.completed, after.accepted);
    EXPECT_EQ(after.p50_ms, before.p50_ms);
    EXPECT_EQ(after.p99_ms, before.p99_ms);

    // ...and the rebalanced cluster serves on the new homes with the
    // invariant intact.
    std::vector<ClusterTicket> more;
    for (int i = 0; i < 6; ++i) {
        SceneRequest request;
        request.scene = scenes[static_cast<std::size_t>(i) %
                               scenes.size()];
        request.arrival_ms = 1000.0 + static_cast<double>(i);
        more.push_back(cluster.Submit(request));
    }
    for (const ClusterTicket ticket : more) {
        const ClusterRenderResult result = cluster.Wait(ticket);
        EXPECT_EQ(result.result.status, RequestStatus::kCompleted);
        EXPECT_EQ(result.shard, new_router.Home(result.result.scene));
    }
    const ClusterStats final_stats = cluster.Snapshot();
    EXPECT_EQ(final_stats.submitted, 14u);
    EXPECT_EQ(final_stats.completed, final_stats.accepted);
    for (const ShardTelemetry& shard : final_stats.per_shard) {
        EXPECT_EQ(shard.service.cache.frame_hits, shard.service.accepted);
    }

    // Utilization stays a fraction across a shrink: the 5-shard epoch's
    // busy time is weighed against 5-shard capacity even after the
    // cluster drops to one replica (each epoch contributes its own
    // shard count x span to the denominator).
    cluster.Resize(1);
    const ClusterStats shrunk = cluster.Snapshot();
    EXPECT_GT(shrunk.utilization, 0.0);
    EXPECT_LE(shrunk.utilization, 1.0);
    EXPECT_EQ(shrunk.accepted, final_stats.accepted);
}

TEST(ShardedRenderService, TierTelemetryMergesAcrossShardsAndResize)
{
    const std::vector<std::string> scenes = {"Instant-NGP", "KiloNeRF",
                                             "TensoRF", "NeRF"};
    ClusterConfig config;
    config.shards = 2;
    config.threads_per_shard = 2;
    config.admission.max_queue_depth = 0;
    config.admission.tiers = DeterminismTiers();
    ShardedRenderService cluster(config);
    for (const std::string& scene : scenes) {
        cluster.RegisterScene(scene, FlexScene(scene));
        cluster.WarmScene(scene);
    }

    // Twelve requests round-robining scenes and tiers; no deadlines and
    // no depth caps, so every one is accepted somewhere.
    for (int i = 0; i < 12; ++i) {
        SceneRequest request;
        request.scene = scenes[static_cast<std::size_t>(i) %
                               scenes.size()];
        request.arrival_ms = static_cast<double>(i);
        request.tier = static_cast<std::size_t>(i) % 3;
        cluster.Submit(request);
    }
    cluster.WaitAll();

    const ClusterStats before = cluster.Snapshot();
    ASSERT_EQ(before.tiers.size(), 3u);
    for (std::size_t t = 0; t < 3; ++t) {
        // Cluster tier rows are the sums of the live shard rows (no
        // retired epoch yet) — and the merged latency digest spans the
        // shards, so its max is the max over the shard maxima.
        std::uint64_t submitted = 0, accepted = 0;
        double max_ms = 0.0;
        for (const ShardTelemetry& shard : before.per_shard) {
            submitted += shard.service.tiers[t].submitted;
            accepted += shard.service.tiers[t].accepted;
            max_ms = std::max(max_ms,
                              shard.service.tiers[t].latency.max_ms);
        }
        EXPECT_EQ(before.tiers[t].submitted, submitted) << t;
        EXPECT_EQ(before.tiers[t].accepted, accepted) << t;
        EXPECT_EQ(before.tiers[t].submitted, 4u) << t;
        EXPECT_EQ(before.tiers[t].accepted, 4u) << t;
        EXPECT_EQ(before.tiers[t].latency.max_ms, max_ms) << t;
        EXPECT_EQ(before.tiers[t].name,
                  config.admission.tiers[t].name);
    }

    // A resize retires the old replicas; their per-tier counters and
    // histograms fold into the lifetime telemetry, bit-preserved.
    cluster.Resize(3);
    const ClusterStats after = cluster.Snapshot();
    ASSERT_EQ(after.tiers.size(), 3u);
    for (std::size_t t = 0; t < 3; ++t) {
        EXPECT_EQ(after.tiers[t].submitted, before.tiers[t].submitted);
        EXPECT_EQ(after.tiers[t].accepted, before.tiers[t].accepted);
        EXPECT_EQ(after.tiers[t].busy_ms, before.tiers[t].busy_ms);
        EXPECT_EQ(after.tiers[t].latency.p50_ms,
                  before.tiers[t].latency.p50_ms);
        EXPECT_EQ(after.tiers[t].latency.max_ms,
                  before.tiers[t].latency.max_ms);
    }

    // And the merged view keeps accruing on the new replicas.
    SceneRequest request;
    request.scene = scenes[0];
    request.arrival_ms = 1000.0;
    request.tier = 2;
    cluster.Wait(cluster.Submit(request));
    const ClusterStats final_stats = cluster.Snapshot();
    EXPECT_EQ(final_stats.tiers[2].submitted,
              before.tiers[2].submitted + 1);
    EXPECT_EQ(final_stats.tiers[2].accepted,
              before.tiers[2].accepted + 1);
}

TEST(ShardedRenderService, SingleShardMatchesPlainRenderService)
{
    // A 1-shard cluster is a RenderService with routing overhead only:
    // identical verdicts, latencies, and telemetry for the same
    // sequence.
    ServeConfig serve_config;
    serve_config.threads = 2;
    serve_config.admission.max_queue_depth = 4;
    RenderService plain(serve_config);
    ClusterConfig cluster_config;
    cluster_config.shards = 1;
    cluster_config.threads_per_shard = 2;
    cluster_config.admission.max_queue_depth = 4;
    ShardedRenderService cluster(cluster_config);

    plain.RegisterScene("ngp", FlexScene("Instant-NGP"));
    cluster.RegisterScene("ngp", FlexScene("Instant-NGP"));
    const double est = plain.WarmScene("ngp").latency_ms;
    EXPECT_EQ(cluster.WarmScene("ngp").latency_ms, est);

    std::vector<ServeTicket> plain_tickets;
    std::vector<ClusterTicket> cluster_tickets;
    for (int i = 0; i < 8; ++i) {
        SceneRequest request;
        request.scene = "ngp";
        request.arrival_ms = 0.0;
        request.deadline_ms = (i % 2 == 0) ? 0.0 : 3.5 * est;
        plain_tickets.push_back(plain.Submit(request));
        cluster_tickets.push_back(cluster.Submit(request));
    }
    for (std::size_t i = 0; i < plain_tickets.size(); ++i) {
        const RenderResult a = plain.Wait(plain_tickets[i]);
        const ClusterRenderResult b = cluster.Wait(cluster_tickets[i]);
        EXPECT_EQ(a.status, b.result.status) << i;
        EXPECT_EQ(a.latency_ms, b.result.latency_ms) << i;
        EXPECT_EQ(a.queue_wait_ms, b.result.queue_wait_ms) << i;
        EXPECT_FALSE(b.spilled);
    }
    const ServiceStats plain_stats = plain.Snapshot();
    const ClusterStats cluster_stats = cluster.Snapshot();
    EXPECT_EQ(cluster_stats.accepted, plain_stats.accepted);
    EXPECT_EQ(cluster_stats.p50_ms, plain_stats.p50_ms);
    EXPECT_EQ(cluster_stats.p99_ms, plain_stats.p99_ms);
    EXPECT_EQ(cluster_stats.sustained_qps, plain_stats.sustained_qps);
}

TEST(ShardedRenderService, MarginalAwareProbeKeepsBatchJoinersHome)
{
    // The probe/pricing seam: with fusion on, a joiner is *admitted* at
    // the batch-join marginal, so the router's probe must price it the
    // same way — otherwise a deadline between the marginal and the solo
    // estimate makes the probe refuse the home shard and spill (or
    // shed) a request the home would have accepted. Schedule: A opens a
    // batch at t = 0; B arrives inside the window with a deadline below
    // the solo price (backlogged home: ~2E; cold spill: ~2E as well)
    // but above the fused batch's completion.
    // The window is a fraction of the scene's estimate, resolved after
    // warming (the estimate is a pure scene property).
    const double est_probe = [] {
        ClusterConfig config;
        config.shards = 2;
        ShardedRenderService probe(config);
        probe.RegisterScene("ngp", FlexScene("Instant-NGP"));
        return EstimatedServiceMs(probe.WarmScene("ngp"));
    }();

    const auto run = [est_probe](double window_fraction) {
        ClusterConfig config;
        config.shards = 2;
        config.threads_per_shard = 1;
        config.spill_recompile_factor = 1.0;
        config.batch_window_ms = window_fraction * est_probe;
        ShardedRenderService cluster(config);
        cluster.RegisterScene("ngp", FlexScene("Instant-NGP"));
        const double est = EstimatedServiceMs(cluster.WarmScene("ngp"));
        const double batch_window_ms = config.batch_window_ms;

        SceneRequest opener;
        opener.scene = "ngp";
        opener.arrival_ms = 0.0;
        const ClusterTicket a = cluster.Submit(opener);

        // With the window on, preview the exact price Submit would
        // admit B at: the probe must see the open batch and quote the
        // marginal, strictly below the solo estimate.
        const std::size_t home = cluster.router().Home("ngp");
        double marginal_ms = 0.0;
        const bool joinable = cluster.shard(home).ProbeBatchJoin(
            "ngp", 0.1 * est, &marginal_ms);
        if (batch_window_ms > 0.0) {
            EXPECT_TRUE(joinable);
            EXPECT_LT(marginal_ms, est);
            EXPECT_GT(marginal_ms, 0.0);
        } else {
            EXPECT_FALSE(joinable);
        }

        SceneRequest joiner;
        joiner.scene = "ngp";
        joiner.arrival_ms = 0.1 * est;
        joiner.deadline_ms = 1.6 * est;
        const ClusterTicket b = cluster.Submit(joiner);

        struct Outcome {
            ClusterRenderResult a;
            ClusterRenderResult b;
            ClusterStats stats;
        } outcome;
        outcome.a = cluster.Wait(a);
        outcome.b = cluster.Wait(b);
        outcome.stats = cluster.Snapshot();
        return outcome;
    };

    // Fusion on (window 0.25E): the probe prices the join at the
    // marginal, B stays home, and probe-accept implied submit-accept.
    {
        const auto fused = run(0.25);
        EXPECT_EQ(fused.b.result.status, RequestStatus::kCompleted);
        EXPECT_EQ(fused.b.shard, fused.b.home_shard);
        EXPECT_FALSE(fused.b.spilled);
        EXPECT_EQ(fused.b.result.batch_elements, 2u);
        EXPECT_GE(fused.stats.fused_batches, 1u);
        EXPECT_EQ(fused.stats.spilled, 0u);
        EXPECT_EQ(fused.stats.shed_deadline, 0u);
    }

    // Fusion off: the same schedule prices B solo everywhere — the
    // home is backlogged past the deadline and the cold spill pays the
    // surcharge past it too, so B sheds. This is exactly the request
    // the marginal-aware probe saves.
    {
        const auto solo = run(0.0);
        EXPECT_EQ(solo.b.result.status, RequestStatus::kShedDeadline);
        EXPECT_FALSE(solo.b.spilled);
        EXPECT_EQ(solo.stats.fused_batches, 0u);
    }
}

}  // namespace
}  // namespace flexnerfer
