/**
 * @file
 * Tests for the NeRF workload descriptors: structural invariants and the
 * architectural properties the paper's profiling section relies on.
 */
#include <gtest/gtest.h>

#include "models/workload.h"

namespace flexnerfer {
namespace {

TEST(Workloads, AllSevenModelsBuild)
{
    ASSERT_EQ(AllModelNames().size(), 7u);
    for (const std::string& name : AllModelNames()) {
        const NerfWorkload w = BuildWorkload(name);
        EXPECT_EQ(w.name, name);
        EXPECT_FALSE(w.ops.empty()) << name;
        EXPECT_GT(w.samples_per_frame, 0.0) << name;
        EXPECT_GT(w.TotalGemmMacs(), 0.0) << name;
    }
}

TEST(Workloads, GemmShapesAreValid)
{
    for (const std::string& name : AllModelNames()) {
        for (const WorkloadOp& op : BuildWorkload(name).ops) {
            if (op.kind != OpKind::kGemm) continue;
            EXPECT_GE(op.gemm.m, 1) << name << "/" << op.name;
            EXPECT_GE(op.gemm.k, 1) << name << "/" << op.name;
            EXPECT_GE(op.gemm.n, 1) << name << "/" << op.name;
            EXPECT_GT(op.gemm.density_a, 0.0);
            EXPECT_LE(op.gemm.density_a, 1.0);
        }
    }
}

TEST(Workloads, VanillaNerfIsTheHeaviest)
{
    // Section 3: the original NeRF needs vastly more operations than the
    // accelerated variants.
    const double nerf = BuildWorkload("NeRF").TotalGemmMacs();
    for (const std::string& name : AllModelNames()) {
        if (name == "NeRF" || name == "Mip-NeRF") continue;
        EXPECT_GT(nerf, 5.0 * BuildWorkload(name).TotalGemmMacs()) << name;
    }
}

TEST(Workloads, EncodingHeavyModelsHaveEncodingWork)
{
    // Fig. 3: KiloNeRF / NSVF / Mip-NeRF / Instant-NGP spend considerable
    // time encoding.
    for (const std::string name :
         {"KiloNeRF", "NSVF", "Mip-NeRF", "Instant-NGP"}) {
        EXPECT_GT(BuildWorkload(name).TotalEncodingValues(), 1e7) << name;
    }
}

TEST(Workloads, InstantNgpUsesHashEncoding)
{
    const NerfWorkload w = BuildWorkload("Instant-NGP");
    bool has_hash = false;
    for (const WorkloadOp& op : w.ops) {
        if (op.kind == OpKind::kHashEncoding) has_hash = true;
    }
    EXPECT_TRUE(has_hash);
}

TEST(Workloads, PruningPropagatesToGemmShapes)
{
    WorkloadParams params;
    params.weight_prune_ratio = 0.7;
    for (const WorkloadOp& op : BuildWorkload("NeRF", params).ops) {
        if (op.kind == OpKind::kGemm) {
            EXPECT_DOUBLE_EQ(op.gemm.structured_prune_b, 0.7);
        }
    }
}

TEST(Workloads, SceneComplexityScalesSamples)
{
    WorkloadParams simple;
    simple.scene_complexity = 0.8;
    WorkloadParams complex_scene;
    complex_scene.scene_complexity = 1.3;
    const double s = BuildWorkload("Instant-NGP", simple).samples_per_frame;
    const double c =
        BuildWorkload("Instant-NGP", complex_scene).samples_per_frame;
    EXPECT_NEAR(c / s, 1.3 / 0.8, 1e-9);
}

TEST(Workloads, HiddenLayersMarkedOnChip)
{
    const NerfWorkload w = BuildWorkload("NeRF");
    int on_chip = 0;
    for (const WorkloadOp& op : w.ops) {
        if (op.kind == OpKind::kGemm && op.activations_on_chip) ++on_chip;
    }
    EXPECT_GT(on_chip, 4);  // the deep MLP's hidden layers
}

TEST(Workloads, UnknownModelIsFatal)
{
    EXPECT_DEATH(BuildWorkload("GaussianSplatting"), "unknown NeRF model");
}

}  // namespace
}  // namespace flexnerfer
