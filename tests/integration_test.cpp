/**
 * @file
 * Cross-module integration tests: the full accelerator pipeline driven end
 * to end — controller program to engine execution, render-to-quantize
 * paths, and the claims the paper derives from component interactions.
 */
#include <gtest/gtest.h>

#include "accel/flexnerfer.h"
#include "accel/gpu_model.h"
#include "accel/neurex.h"
#include "gemm/engine.h"
#include "nerf/field_fit.h"
#include "nerf/renderer.h"
#include "riscv/controller.h"
#include "obs/metrics.h"
#include "sparse/flex_codec.h"
#include "sparse/footprint.h"
#include "sparse/sr_calculator.h"

namespace flexnerfer {
namespace {

TEST(Integration, ControllerDrivesEngineWaves)
{
    // A RISC-V program issues GEMM commands; the issued wave counts drive
    // the engine's compute stage, closing the Fig. 14 control loop.
    AcceleratorController controller;
    // A dense 256^3 GEMM on the 64-wide array needs 4 x 4 x 4 = 64 tile
    // triples of 64 waves each.
    controller.RunProgram(BuildGemmControlProgram(/*precision=*/16,
                                                  /*tiles=*/64,
                                                  /*waves=*/64));
    double total_waves = 0.0;
    Precision precision = Precision::kInt16;
    for (const ControlCommand& cmd : controller.commands()) {
        if (cmd.op == ControlOp::kSetPrecision) {
            precision = cmd.operand == 4    ? Precision::kInt4
                        : cmd.operand == 8  ? Precision::kInt8
                                            : Precision::kInt16;
        }
        if (cmd.op == ControlOp::kRunGemm) total_waves += cmd.operand;
    }
    EXPECT_EQ(precision, Precision::kInt16);
    EXPECT_DOUBLE_EQ(total_waves, 64 * 64.0);

    // The same wave count falls out of a dense 256^3 GEMM on the engine.
    GemmEngineConfig config;
    config.compute_output = false;
    config.support_sparsity = false;
    config.use_flex_codec = false;
    const GemmResult r =
        GemmEngine(config).RunFromShape({256, 256, 256, 1.0, 1.0, 0.0});
    EXPECT_DOUBLE_EQ(r.waves, total_waves);
}

TEST(Integration, RenderQuantizeMeasureSparsityCompress)
{
    // End-to-end: fit a grid field, quantize its activations-producing
    // tables, run samples through the MLP-free pipeline, measure the
    // sparsity of a quantized activation tile online, and compress it
    // into the format the selector picks.
    Rng rng(77);
    GridField::Config config;
    config.grid = {5, 11, 4, 4, 1.6, -1.5, 1.5, 1e-2};
    GridField field(config, rng);
    field.Fit(ProceduralScene::Mic(), 1500, 5, 0.08, rng);

    // Sample field outputs over a ray bundle and quantize to INT8.
    MatrixI tile(64, 64);
    Camera cam({8, 8, 50.0, {0.0, 0.0, 3.0}, {0.0, 0.0, 0.0},
                {0.0, 1.0, 0.0}});
    std::vector<double> sigmas;
    for (int y = 0; y < 8; ++y) {
        for (int x = 0; x < 8; ++x) {
            const Ray ray = cam.GenerateRay(x, y);
            for (double t : StratifiedSamples(1.5, 4.8, 64, nullptr)) {
                double sigma;
                Vec3 rgb;
                field.Query(ray.At(t), ray.direction, &sigma, &rgb);
                sigmas.push_back(sigma);
            }
        }
    }
    ASSERT_EQ(sigmas.size(), tile.size());
    const double scale = ComputeScale(sigmas, Precision::kInt8);
    for (int r = 0; r < 64; ++r) {
        for (int c = 0; c < 64; ++c) {
            tile.at(r, c) = QuantizeValue(sigmas[r * 64 + c], scale,
                                          Precision::kInt8);
        }
    }

    // Empty space quantizes to zero: the tile is sparse (Fig. 13(a)).
    EXPECT_GT(tile.Sparsity(), 0.3);

    SrCalculator calc(Precision::kInt8, 32);  // 64x64-element fetches
    calc.Observe(tile);
    EXPECT_NEAR(calc.SparsityRatioPercent(), tile.Sparsity() * 100.0, 1.0);

    const FlexFormatCodec codec;
    const EncodedTile encoded = codec.Encode(tile, Precision::kInt8);
    EXPECT_LT(encoded.encoded_bits,
              DenseFootprintBits(64, 64, Precision::kInt8));
    EXPECT_EQ(codec.Decode(encoded), tile);
}

TEST(Integration, NocAcceleratesMacComputeOnSparseWork)
{
    // Section 6.3.1: the flexible NoC's dense mapping accelerates MAC
    // computation several-fold on sparse workloads vs. a dense array.
    GemmEngineConfig sparse;
    sparse.compute_output = false;
    GemmEngineConfig dense = sparse;
    dense.support_sparsity = false;
    dense.use_flex_codec = false;

    const GemmShape shape{4096, 512, 512, 0.4, 0.5, 0.0};
    const double sparse_compute =
        GemmEngine(sparse).RunFromShape(shape).compute_cycles;
    const double dense_compute =
        GemmEngine(dense).RunFromShape(shape).compute_cycles;
    EXPECT_GT(dense_compute / sparse_compute, 3.0);
}

TEST(Integration, CompressionCutsDramTimeLikeThePaper)
{
    // Section 6.3.1: compressed formats cut DRAM access time sharply on
    // sparse weights (the paper reports -72% on its workloads).
    GemmEngineConfig with;
    with.compute_output = false;
    with.write_c_to_dram = false;  // hidden layer: outputs stay on chip
    GemmEngineConfig without = with;
    without.use_flex_codec = false;

    const GemmShape shape{4096, 512, 512, 0.4, 1.0, 0.8};
    const double ms_with = GemmEngine(with).RunFromShape(shape).dram_ms;
    const double ms_without =
        GemmEngine(without).RunFromShape(shape).dram_ms;
    EXPECT_LT(ms_with, 0.45 * ms_without);
}

TEST(Integration, QuantizedRenderKeepsAcceleratorGainsAndQuality)
{
    // The Fig. 20(a) pipeline in miniature: INT16 render is visually
    // lossless while INT4 is not; meanwhile INT4 execution is faster.
    Rng rng(78);
    GridField::Config config;
    config.grid = {5, 11, 4, 4, 1.6, -1.5, 1.5, 1e-2};
    GridField field(config, rng);
    field.Fit(ProceduralScene::Lego(), 1500, 5, 0.08, rng);

    Renderer renderer({24, 1.5, 4.8, 1.0, {1.0, 1.0, 1.0}});
    Camera cam({24, 24, 50.0, {0.0, 0.3, 3.0}, {0.0, 0.0, 0.0},
                {0.0, 1.0, 0.0}});
    const Image reference = renderer.Render(field, cam);

    GridField q16 = field;
    q16.QuantizeTables(Precision::kInt16);
    GridField q4 = field;
    q4.QuantizeTables(Precision::kInt4);
    const double psnr16 = Psnr(reference, renderer.Render(q16, cam));
    const double psnr4 = Psnr(reference, renderer.Render(q4, cam));
    EXPECT_GT(psnr16, psnr4 + 3.0);

    FlexNeRFerModel::Config c16;
    FlexNeRFerModel::Config c4;
    c4.precision = Precision::kInt4;
    const NerfWorkload w = BuildWorkload("Instant-NGP");
    EXPECT_LT(FlexNeRFerModel(c4).RunWorkload(w).latency_ms,
              FlexNeRFerModel(c16).RunWorkload(w).latency_ms);
}

TEST(Integration, SimpleScenesRenderFasterOnAccelerator)
{
    // Fig. 20(b): the simple scene renders faster than the complex one.
    const FlexNeRFerModel flex;
    WorkloadParams mic;
    mic.scene_complexity = 0.8;
    WorkloadParams palace;
    palace.scene_complexity = 1.3;
    const double t_mic =
        flex.RunWorkload(BuildWorkload("Instant-NGP", mic)).latency_ms;
    const double t_palace =
        flex.RunWorkload(BuildWorkload("Instant-NGP", palace)).latency_ms;
    EXPECT_LT(t_mic, t_palace);
    EXPECT_NEAR(t_palace / t_mic, 1.3 / 0.8, 0.35);
}

}  // namespace
}  // namespace flexnerfer
